"""Leader/worker cluster: routing, membership, failover, auth, wire docs.

The load-bearing assertions mirror the PR's acceptance gates on small
substrates: cluster answers agree with the single-host reference to 1e-10,
each fingerprint's factor state lives on exactly one worker host
(exactly-once attribution summed across the cluster), a worker dying
mid-stream loses zero accepted jobs (the leader re-routes its fingerprints
to a survivor), and the bearer token guards both the public ``/v1``
surface and the intra-cluster RPCs.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterLeader,
    ClusterWorker,
    FingerprintRouter,
    HostRegistry,
    NoWorkersError,
)
from repro.cluster.protocol import (
    completion_doc,
    completion_from_wire,
    heartbeat_doc,
    heartbeat_from_wire,
    register_doc,
    register_from_wire,
)
from repro.service import (
    JobRequest,
    QueueSaturatedError,
    ResultStore,
    Scheduler,
    ServiceClient,
    UnauthorizedError,
    WireFormatError,
)
from repro.service.result_store import fingerprint_digest
from repro.service.wire import request_from_wire, request_to_wire
from repro.substrate.parallel import SolverSpec


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def small_layout():
    from repro import regular_grid

    return regular_grid(n_side=3, size=128.0, fill=0.5)


@pytest.fixture(scope="module")
def small_g(small_layout):
    from repro import EigenfunctionSolver, SubstrateProfile, extract_dense

    profile = SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)
    solver = EigenfunctionSolver(small_layout, profile, max_panels=32, rtol=1e-10)
    return extract_dense(solver, symmetrize=True)


@pytest.fixture(scope="module")
def spec_a(small_g, small_layout):
    return SolverSpec.dense(small_g, small_layout)


@pytest.fixture(scope="module")
def spec_b(small_g, small_layout):
    # a different matrix is a different substrate: distinct fingerprint
    return SolverSpec.dense(1.5 * small_g, small_layout)


def _worker_attribution(*workers) -> int:
    return sum(int(w.scheduler.stats()["attributed_solves"]) for w in workers)


# ----------------------------------------------------------------- wire docs
def test_register_doc_round_trip():
    worker_id, url = register_from_wire(register_doc("w-1", "http://h:1234/"))
    assert (worker_id, url) == ("w-1", "http://h:1234")
    with pytest.raises(WireFormatError):
        register_from_wire({"worker_id": "w-1", "url": "x"})  # no version
    with pytest.raises(WireFormatError):
        register_from_wire(register_doc("", "http://h:1"))


def test_heartbeat_doc_round_trip(spec_a):
    with Scheduler(n_workers=1, autostart=False) as scheduler:
        scheduler.submit(JobRequest(spec_a, columns=(0, 1)))
        scheduler.step()
        doc = heartbeat_doc("w-7", scheduler, draining=True)
        heartbeat = heartbeat_from_wire(doc)
    assert heartbeat["worker_id"] == "w-7"
    assert heartbeat["draining"] is True
    assert heartbeat["attributed_solves"] == 2
    assert heartbeat["store_columns"] == 2
    assert heartbeat["store_bytes"] > 0
    digests = [entry["digest"] for entry in heartbeat["fingerprints"]]
    assert digests == [fingerprint_digest(spec_a.fingerprint)]


def test_completion_doc_round_trip_is_exact():
    rng = np.random.default_rng(7)
    block = rng.standard_normal((9, 3))
    doc = completion_doc("w-1", "job-000001", (2, 5, 7), block, 3)
    out = completion_from_wire(doc)
    assert out["worker_id"] == "w-1"
    assert out["job_id"] == "job-000001"
    assert out["columns"] == (2, 5, 7)
    assert out["attributed_solves"] == 3
    # base64 float64 wire arrays are bit-exact, not merely close
    assert np.array_equal(out["block"], block)
    bad = dict(doc)
    bad["columns"] = [2, 5]
    with pytest.raises(WireFormatError):
        completion_from_wire(bad)


def test_cluster_request_round_trip_preserves_fingerprint(spec_a):
    request = JobRequest(spec_a, columns=(0, 3, 4))
    decoded = request_from_wire(request_to_wire(request))
    assert decoded.effective_spec.fingerprint == request.effective_spec.fingerprint
    assert decoded.columns == request.columns


# ------------------------------------------------------------------ registry
def test_registry_lease_expiry_is_lazy():
    registry = HostRegistry(lease_s=10.0)
    registry.register("w-1", "http://h:1")
    now = time.monotonic()
    assert [h.worker_id for h in registry.live(now)] == ["w-1"]
    # inside the lease: still live; past it: swept into the dead set on read
    assert registry.live(now + 9.0)
    assert registry.live(now + 11.0) == []
    assert registry.dead() == {"w-1": "lease expired"}
    assert registry.expirations == 1


def test_registry_heartbeat_renews_and_unknown_asks_reregister():
    registry = HostRegistry(lease_s=10.0)
    registry.register("w-1", "http://h:1")
    assert registry.heartbeat("w-1", {"queue_depth": 3}) is True
    assert registry.get("w-1").queue_depth == 3
    assert registry.heartbeat("w-9", {}) is False  # never registered
    # a dead host's heartbeat is also refused until it re-registers
    registry.mark_dead("w-1", "rpc failed")
    assert registry.heartbeat("w-1", {}) is False
    registry.register("w-1", "http://h:2")  # resurrect, possibly on a new port
    assert registry.get("w-1").url == "http://h:2"
    assert "w-1" not in registry.dead()


def test_registry_drain_flag():
    registry = HostRegistry(lease_s=10.0)
    registry.register("w-1", "http://h:1")
    assert registry.drain("w-1") is True
    assert registry.get("w-1").draining is True
    assert registry.drain("w-9") is False


# -------------------------------------------------------------------- router
def _static_registry(*worker_ids: str, lease_s: float = 1e9) -> HostRegistry:
    registry = HostRegistry(lease_s=lease_s)
    for worker_id in worker_ids:
        registry.register(worker_id, f"http://{worker_id}:1")
    return registry


def test_router_is_sticky_and_spreads(spec_a):
    registry = _static_registry("w-1", "w-2", "w-3")
    router = FingerprintRouter(registry)
    fingerprints = [("dense", ("fp", i), None, ()) for i in range(24)]
    owners = {repr(fp): router.route(fp).worker_id for fp in fingerprints}
    # sticky: every later route answers the same host
    for fp in fingerprints:
        assert router.route(fp).worker_id == owners[repr(fp)]
    # consistent hashing spreads 24 fingerprints over all three hosts
    assert len(set(owners.values())) == 3
    assert router.info()["placements"] == 24
    assert router.info()["reroutes"] == 0


def test_router_pins_survive_new_host_but_move_on_death():
    registry = _static_registry("w-1", "w-2")
    router = FingerprintRouter(registry)
    fingerprint = ("dense", ("fp", 0), None, ())
    owner = router.route(fingerprint).worker_id
    registry.register("w-3", "http://w-3:1")  # join: warm pins must not move
    assert router.route(fingerprint).worker_id == owner
    registry.mark_dead(owner, "rpc failed")  # death: pin must move
    new_owner = router.route(fingerprint).worker_id
    assert new_owner != owner
    assert router.info()["reroutes"] == 1
    # and the re-placed pin is sticky again
    assert router.route(fingerprint).worker_id == new_owner


def test_router_no_workers_and_draining():
    registry = _static_registry("w-1")
    router = FingerprintRouter(registry)
    fingerprint = ("dense", ("fp", 0), None, ())
    owner = router.route(fingerprint).worker_id
    registry.drain("w-1")
    # draining keeps its pinned fingerprints...
    assert router.route(fingerprint).worker_id == owner
    # ...but takes no new ones
    with pytest.raises(NoWorkersError):
        router.route(("dense", ("fp", 1), None, ()))
    registry.mark_dead("w-1", "gone")
    with pytest.raises(NoWorkersError):
        router.route(fingerprint)


def test_router_balances_small_pin_counts():
    # 4 sticky fingerprints over 2 hosts must split 2/2 even when the raw
    # ring would land them all on one arc — placement is the only load-
    # balancing moment a sticky-pin router gets
    registry = _static_registry("w-1", "w-2")
    router = FingerprintRouter(registry)
    for i in range(4):
        router.route(("dense", ("balance", i), None, ()))
    assert sorted(router.info()["pins_per_host"].values()) == [2, 2]


def test_router_load_override_prefers_idle_host():
    registry = _static_registry("w-1", "w-2")
    router = FingerprintRouter(registry, load_skew=4)
    # find a fingerprint whose ring candidate is w-1, then overload w-1
    probe = next(
        fp
        for i in range(64)
        if (fp := ("dense", ("probe", i), None, ()))
        and router._place_locked(
            fingerprint_digest(fp), registry.live()
        ).worker_id == "w-1"
    )
    registry.heartbeat("w-1", {"queue_depth": 50})
    registry.heartbeat("w-2", {"queue_depth": 0})
    assert router.route(probe).worker_id == "w-2"
    assert router.info()["load_overrides"] == 1


# ------------------------------------------------------- remote-solver hook
def test_scheduler_remote_solver_hook(spec_a, small_g):
    calls: list[tuple] = []

    def remote(fingerprint, spec, columns):
        calls.append((fingerprint, columns))
        return small_g[:, list(columns)]

    with Scheduler(remote_solver=remote, autostart=False) as scheduler:
        job_id = scheduler.submit(JobRequest(spec_a, columns=(0, 4)))
        scheduler.step()
        job = scheduler.result(job_id, wait_s=5.0)
        stats = scheduler.stats()
    assert np.allclose(job.result, small_g[:, [0, 4]], atol=1e-12)
    assert calls == [(spec_a.fingerprint, (0, 4))]
    assert stats["remote_columns_solved"] == 2
    assert stats["attributed_solves"] == 0  # the leader never solves locally
    assert stats["engines"]["built"] == 0  # ...and never builds an engine


def test_scheduler_remote_solver_shape_mismatch_fails_group(spec_a):
    def bad_remote(fingerprint, spec, columns):
        return np.zeros((2, 1))

    from repro.service import RetryPolicy

    with Scheduler(
        remote_solver=bad_remote,
        autostart=False,
        retry_policy=RetryPolicy(max_attempts=1),
    ) as scheduler:
        job_id = scheduler.submit(JobRequest(spec_a, columns=(0,)))
        scheduler.step()
        job = scheduler.result(job_id, wait_s=5.0)
    assert job.status == "failed"
    assert "shape" in (job.error or "")


# ------------------------------------------------------------------- cluster
def test_cluster_end_to_end_matches_single_host(spec_a, spec_b, small_g):
    columns = (0, 2, 5, 8)
    with Scheduler(n_workers=1) as reference:
        ref_a = reference.result(
            reference.submit(JobRequest(spec_a, columns=columns)), wait_s=30.0
        ).result
        ref_b = reference.result(
            reference.submit(JobRequest(spec_b, columns=columns)), wait_s=30.0
        ).result

    with ClusterLeader(auth_token="token-1") as leader:
        with (
            ClusterWorker(
                leader.url, n_workers=1, heartbeat_s=0.2, auth_token="token-1"
            ) as w1,
            ClusterWorker(
                leader.url, n_workers=1, heartbeat_s=0.2, auth_token="token-1"
            ) as w2,
        ):
            with ServiceClient(leader.url, auth_token="token-1") as client:
                got_a = client.extract(JobRequest(spec_a, columns=columns))
                got_b = client.extract(JobRequest(spec_b, columns=columns))
                stats = client.stats()
            assert np.allclose(got_a, ref_a, atol=1e-10)
            assert np.allclose(got_b, ref_b, atol=1e-10)
            # exactly-once attribution: each column solved on one host, once
            assert _worker_attribution(w1, w2) == 2 * len(columns)
            assert stats["remote_columns_solved"] == 2 * len(columns)
            # repeating the extraction is served from the leader's store:
            # no new RPC, no new attribution anywhere
            rpc_before = stats["cluster"]["rpc_calls"]
            with ServiceClient(leader.url, auth_token="token-1") as client:
                again = client.extract(JobRequest(spec_a, columns=columns))
                stats2 = client.stats()
            assert np.array_equal(again, got_a)
            assert stats2["cluster"]["rpc_calls"] == rpc_before
            assert _worker_attribution(w1, w2) == 2 * len(columns)
            # each fingerprint's warm state lives on exactly one host
            owners = {}
            for worker in (w1, w2):
                for fp, _ in worker.scheduler.store.fingerprints().items():
                    owners.setdefault(fingerprint_digest(fp), set()).add(
                        worker.worker_id
                    )
            assert owners  # at least one fingerprint landed
            assert all(len(hosts) == 1 for hosts in owners.values())


def test_cluster_failover_reroutes_and_loses_nothing(spec_a, small_g):
    with ClusterLeader() as leader:
        w1 = ClusterWorker(leader.url, n_workers=1, heartbeat_s=0.2).start()
        w2 = ClusterWorker(leader.url, n_workers=1, heartbeat_s=0.2).start()
        try:
            with ServiceClient(leader.url, timeout_s=60.0) as client:
                first = client.extract(JobRequest(spec_a, columns=(0, 1)))
                owner = next(iter(leader.router.pins().values()))
                victim = w1 if w1.worker_id == owner else w2
                survivor = w2 if victim is w1 else w1
                victim.close()  # host death, while the fingerprint is pinned
                # accepted after the death, must still complete: the retry
                # path marks the host dead and re-pins on the survivor
                second = client.extract(JobRequest(spec_a, columns=(2, 3)))
                stats = client.stats()
            assert np.allclose(first, small_g[:, [0, 1]], atol=1e-10)
            assert np.allclose(second, small_g[:, [2, 3]], atol=1e-10)
            assert stats["cluster"]["router"]["reroutes"] >= 1
            assert victim.worker_id in stats["cluster"]["registry"]["dead"]
            assert leader.router.pins() == {
                fingerprint_digest(spec_a.fingerprint): survivor.worker_id
            }
            # the survivor did the re-routed solve
            assert int(survivor.scheduler.stats()["attributed_solves"]) == 2
        finally:
            for worker in (w1, w2):
                try:
                    worker.close()
                except Exception:
                    pass


def test_cluster_auth_guards_public_and_rpc_surfaces(spec_a):
    with ClusterLeader(auth_token="hunter2") as leader:
        with ClusterWorker(
            leader.url, n_workers=1, heartbeat_s=0.2, auth_token="hunter2"
        ) as worker:
            # unauthenticated public client: typed 401
            with ServiceClient(leader.url) as anonymous:
                with pytest.raises(UnauthorizedError):
                    anonymous.stats()
                # the health probe stays open for load balancers
                assert anonymous.healthz()["ok"] is True
            # wrong token on the worker's RPC surface: 401 too
            from repro.cluster.protocol import post_json

            with pytest.raises(UnauthorizedError):
                post_json(
                    worker.url + "/v1/cluster/solve", {}, auth_token="wrong"
                )
            # authenticated end to end
            with ServiceClient(leader.url, auth_token="hunter2") as client:
                block = client.extract(JobRequest(spec_a, columns=(0,)))
            assert block.shape[1] == 1


def test_injected_rpc_send_failure_marks_dead_and_reroutes(spec_a, small_g):
    from repro import faults

    with ClusterLeader() as leader:
        # long heartbeat: the evicted worker must not resurrect itself
        # (heartbeat -> known:false -> re-register) before we assert
        with (
            ClusterWorker(leader.url, n_workers=1, heartbeat_s=30.0) as w1,
            ClusterWorker(leader.url, n_workers=1, heartbeat_s=30.0) as w2,
        ):
            with faults.inject(
                [
                    {
                        "site": "rpc.send",
                        "action": "raise",
                        "exception": "ConnectionError",
                        "times": 1,
                    }
                ]
            ):
                with ServiceClient(leader.url, timeout_s=60.0) as client:
                    block = client.extract(JobRequest(spec_a, columns=(0, 1)))
            assert np.allclose(block, small_g[:, [0, 1]], atol=1e-10)
            # the injected transport failure evicted one host and the retry
            # re-routed the group onto the other
            assert leader.registry.deaths == 1
            assert leader.router.info()["reroutes"] == 1
            survivors = {h.worker_id for h in leader.registry.live()}
            assert len(survivors) == 1 and survivors < {w1.worker_id, w2.worker_id}


def test_dropped_heartbeats_expire_lease_then_worker_recovers():
    from repro import faults

    with ClusterLeader(lease_s=0.5) as leader:
        with ClusterWorker(leader.url, n_workers=1, heartbeat_s=0.1) as worker:
            deadline = time.monotonic() + 5.0
            while not leader.registry.live() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert leader.registry.live()
            with faults.inject(
                [{"site": "worker.heartbeat", "action": "drop", "times": None}]
            ):
                deadline = time.monotonic() + 5.0
                while leader.registry.live() and time.monotonic() < deadline:
                    time.sleep(0.05)
                # a hung-but-listening host: its lease expires on read
                assert leader.registry.live() == []
                assert leader.registry.dead() == {worker.worker_id: "lease expired"}
            # heartbeats resume, the leader answers known=false, the worker
            # re-registers itself — no operator involved
            deadline = time.monotonic() + 5.0
            while not leader.registry.live() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert [h.worker_id for h in leader.registry.live()] == [worker.worker_id]


def test_worker_reregisters_after_leader_restart_forgets_it(spec_a):
    with ClusterLeader(lease_s=30.0) as leader:
        with ClusterWorker(leader.url, n_workers=1, heartbeat_s=0.1) as worker:
            deadline = time.monotonic() + 5.0
            while not leader.registry.live() and time.monotonic() < deadline:
                time.sleep(0.02)
            # simulate a leader restart: membership gone, worker still up
            leader.registry.mark_dead(worker.worker_id, "leader restarted")
            deadline = time.monotonic() + 5.0
            while not leader.registry.live() and time.monotonic() < deadline:
                time.sleep(0.02)
            live = [h.worker_id for h in leader.registry.live()]
            assert live == [worker.worker_id]
            assert worker.reregistrations >= 1


# ------------------------------------------------------------ client retries
def test_client_honors_retry_after_on_429(spec_a):
    from repro.service import AsyncExtractionServer

    scheduler = Scheduler(n_workers=1, autostart=False, max_queue_depth=1)
    with AsyncExtractionServer(scheduler=scheduler) as server:
        filler = scheduler.submit(JobRequest(spec_a, columns=(0,)))
        # no retries: the saturated queue is a typed 429 immediately
        with ServiceClient(server.url) as impatient:
            with pytest.raises(QueueSaturatedError):
                impatient.submit(JobRequest(spec_a, columns=(1,)))

        drained = threading.Timer(0.3, scheduler.step)
        drained.start()
        try:
            with ServiceClient(server.url, retries=5, retry_cap_s=0.2) as patient:
                job_id = patient.submit(JobRequest(spec_a, columns=(1,)))
            assert job_id
        finally:
            drained.join()
        scheduler.step()
        assert scheduler.result(filler, wait_s=5.0).status == "done"


def test_client_rejects_negative_retries():
    with pytest.raises(ValueError):
        ServiceClient("http://127.0.0.1:1", retries=-1)


# ------------------------------------------------- store fingerprint ledger
def test_result_store_fingerprints_ledger(spec_a, spec_b):
    store = ResultStore()
    store.put(spec_a.fingerprint, 0, np.zeros(9))
    store.put(spec_a.fingerprint, 1, np.zeros(9))
    store.put(spec_b.fingerprint, 0, np.zeros(9))
    ledger = store.fingerprints()
    assert ledger[spec_a.fingerprint]["columns"] == 2
    assert ledger[spec_b.fingerprint]["columns"] == 1
    assert ledger[spec_a.fingerprint]["bytes"] == 2 * 9 * 8
    info = store.info()
    assert [e["columns"] for e in info["fingerprints"]] == [2, 1]  # by bytes desc
    assert info["fingerprints"][0]["digest"] == fingerprint_digest(spec_a.fingerprint)


def test_stats_expose_per_fingerprint_bytes(spec_a):
    from repro.service import AsyncExtractionServer

    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url) as client:
            client.extract(JobRequest(spec_a, columns=(0, 1)))
            stats = client.stats()
    entries = stats["result_store"]["fingerprints"]
    assert entries == [
        {
            "digest": fingerprint_digest(spec_a.fingerprint),
            "columns": 2,
            "bytes": 2 * 9 * 8,
        }
    ]
