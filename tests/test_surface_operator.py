"""Tests for the DCT current-to-potential operator (Figure 2-6)."""

import numpy as np
import pytest

from repro.geometry import PanelGrid, regular_grid
from repro.substrate import SubstrateProfile
from repro.substrate.bem import SurfaceOperator


@pytest.fixture(scope="module")
def setup():
    layout = regular_grid(n_side=4, size=64.0, fill=0.5)
    profile = SubstrateProfile.two_layer_example(size=64.0)
    grid = PanelGrid(layout, 16, 16)
    return layout, profile, grid


class TestApplyPaths:
    def test_fft_matches_matrix_path(self, setup, rng):
        _, profile, grid = setup
        op_fft = SurfaceOperator(grid, profile, use_fft=True)
        op_mat = SurfaceOperator(grid, profile, use_fft=False)
        q = rng.standard_normal((grid.nx, grid.ny))
        assert np.allclose(op_fft.apply_grid(q), op_mat.apply_grid(q), rtol=1e-10, atol=1e-12)

    def test_apply_flat_consistent(self, setup, rng):
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        q = rng.standard_normal(grid.n_panels)
        flat = op.apply_flat(q)
        grid_result = op.apply_grid(q.reshape(grid.nx, grid.ny)).ravel()
        assert np.allclose(flat, grid_result)

    def test_wrong_shape_rejected(self, setup):
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        with pytest.raises(ValueError):
            op.apply_grid(np.zeros((3, 3)))

    def test_size_mismatch_rejected(self, setup):
        layout, _, grid = setup
        wrong = SubstrateProfile.two_layer_example(size=100.0)
        with pytest.raises(ValueError):
            SurfaceOperator(grid, wrong)


class TestOperatorProperties:
    def test_symmetry(self, setup, rng):
        """<y, A x> == <A y, x> (the operator is self-adjoint)."""
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        x = rng.standard_normal(grid.n_panels)
        y = rng.standard_normal(grid.n_panels)
        assert np.isclose(y @ op.apply_flat(x), x @ op.apply_flat(y), rtol=1e-10)

    def test_positive_semidefinite(self, setup, rng):
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        for _ in range(5):
            x = rng.standard_normal(grid.n_panels)
            assert x @ op.apply_flat(x) >= -1e-10

    def test_uniform_current_gives_uniform_potential(self, setup):
        """A uniform current density excites only the (0,0) mode."""
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        q = np.ones((grid.nx, grid.ny))
        v = op.apply_grid(q)
        assert np.allclose(v, v[0, 0], rtol=1e-10)
        expected = grid.nx * grid.ny * op.weights[0, 0]
        assert np.isclose(v[0, 0], expected, rtol=1e-10)

    def test_contact_block_diagonal_matches_dense(self, setup):
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        dense = op.dense_contact_block()
        assert np.allclose(np.diag(dense), op.contact_block_diagonal(), rtol=1e-9)

    def test_dense_contact_block_symmetric_spd(self, setup):
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        a = op.dense_contact_block()
        assert np.allclose(a, a.T, rtol=1e-9, atol=1e-12)
        eigs = np.linalg.eigvalsh(0.5 * (a + a.T))
        assert eigs.min() > 0

    def test_nearby_panels_couple_more_strongly(self, setup):
        _, profile, grid = setup
        op = SurfaceOperator(grid, profile)
        a = op.dense_contact_block()
        # potential at a panel from its own current exceeds that from a distant panel
        assert a[0, 0] > abs(a[0, -1])
