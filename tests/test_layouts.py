"""Tests for the layout generators used in the paper's evaluation."""

import numpy as np
import pytest

from repro.geometry import (
    SquareHierarchy,
    alternating_size_grid,
    irregular_same_size,
    large_alternating_grid,
    large_mixed,
    mixed_shapes,
    regular_grid,
    ring_contact,
    two_square_clusters,
)


class TestRegularGrid:
    def test_count_and_size(self):
        layout = regular_grid(n_side=8, size=128.0, fill=0.5)
        assert layout.n_contacts == 64
        assert layout.size_x == layout.size_y == 128.0

    def test_all_contacts_identical_size(self):
        layout = regular_grid(n_side=4, size=64.0, fill=0.4)
        areas = layout.areas
        assert np.allclose(areas, areas[0])

    def test_no_overlaps(self):
        assert not regular_grid(n_side=6, size=96.0, fill=0.9).has_overlaps()

    def test_invalid_fill(self):
        with pytest.raises(ValueError):
            regular_grid(n_side=4, fill=1.5)

    def test_contacts_fit_finest_squares(self):
        layout = regular_grid(n_side=8, size=128.0, fill=0.5)
        # should build a hierarchy at level 3 without any contact crossing a boundary
        SquareHierarchy(layout, max_level=3)


class TestIrregularSameSize:
    def test_fewer_contacts_than_grid(self):
        layout = irregular_same_size(n_side=8, keep_fraction=0.6, seed=1)
        assert 0 < layout.n_contacts < 64

    def test_same_sizes(self):
        layout = irregular_same_size(n_side=8, seed=2)
        assert np.allclose(layout.areas, layout.areas[0])

    def test_reproducible_with_seed(self):
        a = irregular_same_size(n_side=8, seed=3)
        b = irregular_same_size(n_side=8, seed=3)
        assert a.n_contacts == b.n_contacts
        assert np.allclose(a.centroids, b.centroids)

    def test_contacts_stay_in_cells(self):
        layout = irregular_same_size(n_side=8, size=128.0, seed=4)
        SquareHierarchy(layout, max_level=3)

    def test_invalid_keep_fraction(self):
        with pytest.raises(ValueError):
            irregular_same_size(keep_fraction=0.0)


class TestAlternatingSizeGrid:
    def test_two_sizes_present(self):
        layout = alternating_size_grid(n_side=8, size=128.0)
        areas = np.unique(np.round(layout.areas, 9))
        assert areas.size == 2

    def test_count(self):
        assert alternating_size_grid(n_side=8).n_contacts == 64

    def test_no_overlaps(self):
        assert not alternating_size_grid(n_side=8).has_overlaps()


class TestRingAndMixed:
    def test_ring_contact_pieces(self):
        pieces = ring_contact(0.0, 0.0, outer=10.0, thickness=1.0)
        assert len(pieces) == 4
        # pieces must not overlap and total area equals the ring area
        total = sum(p.area for p in pieces)
        assert np.isclose(total, 10.0 * 10.0 - 8.0 * 8.0)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not pieces[i].overlaps(pieces[j])

    def test_ring_invalid_thickness(self):
        with pytest.raises(ValueError):
            ring_contact(0, 0, outer=4.0, thickness=2.5)

    def test_mixed_shapes_builds_hierarchy(self):
        layout = mixed_shapes(size=128.0, max_level=4, seed=3)
        assert layout.n_contacts > 50
        SquareHierarchy(layout, max_level=4)

    def test_mixed_shapes_has_varied_sizes(self):
        layout = mixed_shapes(size=128.0, max_level=4)
        areas = layout.areas
        assert areas.max() / areas.min() > 3.0


class TestLargeLayouts:
    def test_large_alternating_count(self):
        layout = large_alternating_grid(n_side=32, size=256.0)
        assert layout.n_contacts == 1024

    def test_large_mixed_two_populations(self):
        layout = large_mixed(size=256.0, n_blocks=4, max_level=5)
        assert layout.n_contacts > 100
        SquareHierarchy(layout, max_level=5)


class TestTwoSquareClusters:
    def test_cluster_separation(self):
        layout = two_square_clusters(size=64.0, n_per_cluster=9, separation_cells=3)
        assert layout.n_contacts == 18
        src = layout.centroids[:9]
        dst = layout.centroids[9:]
        # clusters are well separated: min inter-cluster distance >> intra spread
        d_between = np.min(
            np.linalg.norm(src[:, None, :] - dst[None, :, :], axis=-1)
        )
        assert d_between > 8.0
