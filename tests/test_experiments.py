"""Tests for the experiment configuration and runner module."""

import pytest

from repro.experiments import (
    chapter4_examples,
    get_example,
    paper_examples,
    run_solver_speed_table,
    run_wavelet_experiment,
)


class TestExampleConfigs:
    def test_paper_examples_cover_table_3_1(self):
        examples = paper_examples(n_side=8)
        assert set(examples) == {"1a", "1b", "2", "3"}
        assert examples["1b"].solver == "fd"

    def test_chapter4_examples_cover_tables_4_x(self):
        examples = chapter4_examples(n_side=8)
        assert set(examples) == {"ch4-1", "ch4-2", "ch4-3", "ch4-4", "ch4-5"}

    @pytest.mark.parametrize("name", ["1a", "2", "3", "ch4-1", "ch4-2", "ch4-3"])
    def test_layouts_build_and_fit_hierarchy(self, name):
        config = get_example(name, n_side=8)
        layout = config.build_layout()
        hierarchy = config.build_hierarchy(layout)
        assert hierarchy.layout.n_contacts == layout.n_contacts

    def test_solver_kinds(self):
        config = get_example("1a", n_side=4)
        solver = config.build_solver(config.build_layout())
        assert solver.n_contacts == 16
        config_fd = get_example("1b", n_side=4)
        config_fd.fd_resolution = (16, 16)
        config_fd.fd_planes_per_layer = (1, 2, 1)
        solver_fd = config_fd.build_solver(config_fd.build_layout())
        assert solver_fd.n_contacts == 16

    def test_unknown_solver_kind(self):
        config = get_example("1a", n_side=4)
        config.solver = "bogus"
        with pytest.raises(ValueError):
            config.build_solver(config.build_layout())


class TestRunners:
    def test_wavelet_runner_produces_reports(self):
        config = get_example("1a", n_side=8)
        config.max_panels = 64
        result = run_wavelet_experiment(config)
        rows = result.rows()
        assert len(rows) == 2
        assert rows[0]["thresholded"] is False and rows[1]["thresholded"] is True
        assert result.unthresholded.max_relative_error < 0.05
        assert result.thresholded.sparsity_factor > result.unthresholded.sparsity_factor

    def test_solver_speed_runner(self):
        config = get_example("1a", n_side=4)
        config.max_panels = 32
        config.fd_resolution = (16, 16)
        config.fd_planes_per_layer = (1, 2, 1)
        rows = run_solver_speed_table(config, n_solves=2)
        names = {r["solver"] for r in rows}
        assert names == {"finite difference", "eigenfunction"}
        for r in rows:
            assert r["time_per_solve_s"] > 0
