"""Extraction service: jobs, result store, scheduler, metrics, HTTP front end."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.service import (
    ExtractionServer,
    JobRequest,
    JobState,
    ResultStore,
    Scheduler,
    ServiceClient,
    UnknownJobError,
)
from repro.service.metrics import ServiceMetrics, latency_percentiles
from repro.substrate.extraction import extract_columns
from repro.substrate.parallel import SolverSpec
from repro.substrate.solver_base import CountingSolver


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def dense_spec(small_g_module, small_layout_module):
    return SolverSpec.dense(small_g_module, small_layout_module)


@pytest.fixture(scope="module")
def small_layout_module():
    from repro import regular_grid

    return regular_grid(n_side=4, size=128.0, fill=0.5)


@pytest.fixture(scope="module")
def small_profile_module():
    from repro import SubstrateProfile

    return SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)


@pytest.fixture(scope="module")
def small_g_module(small_layout_module, small_profile_module):
    from repro import EigenfunctionSolver, extract_dense

    solver = EigenfunctionSolver(
        small_layout_module, small_profile_module, max_panels=32, rtol=1e-10
    )
    return extract_dense(solver, symmetrize=True)


@pytest.fixture(scope="module")
def bem_spec(small_layout_module, small_profile_module):
    return SolverSpec.bem(
        small_layout_module, small_profile_module, max_panels=32, rtol=1e-10
    )


@pytest.fixture
def scheduler(request):
    """Manually stepped scheduler (deterministic coalescing), closed on exit."""
    sched = Scheduler(n_workers=1, autostart=False)
    request.addfinalizer(sched.close)
    return sched


# ----------------------------------------------------------------- JobRequest
def test_job_request_validates_columns_and_pairs(dense_spec):
    n = dense_spec.layout.n_contacts
    with pytest.raises(ValueError):
        JobRequest(dense_spec, columns=(n,))
    with pytest.raises(ValueError):
        JobRequest(dense_spec, columns=())
    with pytest.raises(ValueError):
        JobRequest(dense_spec, pairs=((0, n),))
    with pytest.raises(ValueError):
        JobRequest(dense_spec, timeout_s=0.0)


def test_job_request_needed_columns(dense_spec):
    req = JobRequest(dense_spec, columns=(3, 1), pairs=((0, 5), (2, 1)))
    assert req.needed_columns() == (1, 3, 5)
    dense = JobRequest(dense_spec)
    assert dense.needed_columns() == tuple(range(dense_spec.layout.n_contacts))


def test_fingerprint_separates_substrates_and_tolerances(bem_spec, dense_spec):
    same = JobRequest(bem_spec, columns=(0,))
    other_columns = JobRequest(bem_spec, columns=(1, 2))
    assert same.fingerprint == other_columns.fingerprint  # what, not how much
    tighter = JobRequest(bem_spec, columns=(0,), tolerance=1e-12)
    assert tighter.fingerprint != same.fingerprint
    assert JobRequest(dense_spec, columns=(0,)).fingerprint != same.fingerprint
    # the dense matrix content enters via digest: a perturbed copy differs
    perturbed = SolverSpec.dense(
        np.asarray(dense_spec.options["matrix"]) + 1e-9, dense_spec.layout
    )
    assert perturbed.fingerprint != dense_spec.fingerprint


# ---------------------------------------------------------------- ResultStore
def test_result_store_round_trip_and_counters():
    store = ResultStore(max_bytes=10_000)
    fp = ("fp",)
    assert store.get(fp, 0) is None
    column = store.put(fp, 0, np.arange(4.0))
    assert not column.flags.writeable
    got = store.get(fp, 0)
    np.testing.assert_array_equal(got, np.arange(4.0))
    info = store.info()
    assert info["hits"] == 1 and info["misses"] == 1 and info["columns"] == 1
    found = store.get_many(fp, (0, 1))
    assert set(found) == {0}


def test_result_store_evicts_lru_under_budget_pressure():
    column_bytes = np.zeros(8).nbytes
    store = ResultStore(max_bytes=3 * column_bytes)
    fp = ("fp",)
    for c in range(3):
        store.put(fp, c, np.full(8, float(c)))
    store.get(fp, 0)  # refresh 0: the LRU victim must now be 1
    store.put(fp, 3, np.full(8, 3.0))
    assert store.contains(fp, 0) and not store.contains(fp, 1)
    assert store.info()["evictions"] == 1
    # shrinking the budget evicts down immediately
    store.set_budget(column_bytes)
    assert len(store) == 1
    # a value larger than the whole budget is served but never stored
    big = store.put(fp, 9, np.zeros(64))
    assert big.shape == (64,) and not store.contains(fp, 9)


def test_result_store_clear_by_fingerprint():
    store = ResultStore(max_bytes=10_000)
    store.put(("a",), 0, np.zeros(4))
    store.put(("b",), 0, np.zeros(4))
    store.clear(("a",))
    assert not store.contains(("a",), 0) and store.contains(("b",), 0)
    store.clear()
    assert len(store) == 0


# ------------------------------------------------------------------ scheduler
def test_coalescing_matches_isolated_solves_and_attribution(
    scheduler, bem_spec, small_g_module
):
    """Two concurrent jobs over one substrate coalesce into one batch whose
    results match isolated extraction at 1e-10 with identical attribution."""
    cols_a, cols_b = (0, 2, 5, 9), (2, 5, 7, 11)
    union = sorted(set(cols_a) | set(cols_b))
    # isolated references, with their own attribution
    iso = {}
    for cols in (cols_a, cols_b):
        counting = CountingSolver(bem_spec.build())
        iso[cols] = extract_columns(counting, np.asarray(cols))
        assert counting.solve_count == len(cols)
    job_a = scheduler.submit(JobRequest(bem_spec, columns=cols_a))
    job_b = scheduler.submit(JobRequest(bem_spec, columns=cols_b))
    assert scheduler.queue_depth == 2
    assert scheduler.step() == 2
    a, b = scheduler.result(job_a), scheduler.result(job_b)
    assert a.status == JobState.DONE and b.status == JobState.DONE
    scale = np.abs(small_g_module).max()
    assert np.abs(a.result - iso[cols_a]).max() / scale < 1e-10
    assert np.abs(b.result - iso[cols_b]).max() / scale < 1e-10
    # one batch, one black-box solve per distinct union column
    assert scheduler.metrics.batches == 1
    assert scheduler.metrics.coalesced_jobs == 2
    assert scheduler.attributed_solves == len(union)
    assert scheduler.metrics.columns_solved == len(union)
    assert scheduler.metrics.columns_from_store == 0


def test_repeated_query_serves_from_store_with_zero_solves(scheduler, dense_spec):
    cols = (1, 4, 6)
    first = scheduler.submit(JobRequest(dense_spec, columns=cols))
    scheduler.step()
    solved_before = scheduler.metrics.columns_solved
    again = scheduler.submit(JobRequest(dense_spec, columns=cols))
    scheduler.step()
    assert scheduler.result(again).status == JobState.DONE
    assert scheduler.metrics.columns_solved == solved_before  # zero new solves
    assert scheduler.metrics.columns_from_store == len(cols)
    np.testing.assert_array_equal(
        scheduler.result(first).result, scheduler.result(again).result
    )


def test_pair_requests_ride_on_solved_columns(scheduler, dense_spec, small_g_module):
    job_id = scheduler.submit(JobRequest(dense_spec, pairs=((0, 3), (7, 3), (2, 9))))
    scheduler.step()
    job = scheduler.result(job_id)
    assert job.status == JobState.DONE and job.result is None
    np.testing.assert_allclose(
        job.pair_values,
        [small_g_module[0, 3], small_g_module[7, 3], small_g_module[2, 9]],
        rtol=1e-12,
    )
    # only the two distinct columns were charged
    assert scheduler.attributed_solves == 2


def test_dense_request_returns_full_matrix(scheduler, dense_spec, small_g_module):
    job_id = scheduler.submit(JobRequest(dense_spec))
    scheduler.step()
    job = scheduler.result(job_id)
    assert job.result_columns == tuple(range(dense_spec.layout.n_contacts))
    np.testing.assert_allclose(job.result, small_g_module, rtol=1e-12)


def test_cancellation_before_start(scheduler, dense_spec):
    job_id = scheduler.submit(JobRequest(dense_spec, columns=(0,)))
    assert scheduler.cancel(job_id) is True
    assert scheduler.result(job_id).status == JobState.CANCELLED
    assert scheduler.step() == 0  # the cancelled job never reaches a batch
    assert scheduler.attributed_solves == 0
    # terminal jobs cannot be cancelled again
    assert scheduler.cancel(job_id) is False
    assert scheduler.metrics.jobs_cancelled == 1
    with pytest.raises(KeyError):
        scheduler.cancel("job-999999")


def test_per_job_timeout_in_queue(scheduler, dense_spec):
    job_id = scheduler.submit(JobRequest(dense_spec, columns=(0,), timeout_s=0.01))
    time.sleep(0.03)
    assert scheduler.step() == 0
    job = scheduler.result(job_id)
    assert job.status == JobState.TIMEOUT
    assert "timed out" in job.error
    assert scheduler.metrics.jobs_timeout == 1
    # a job with a generous deadline is unaffected
    ok = scheduler.submit(JobRequest(dense_spec, columns=(0,), timeout_s=60.0))
    scheduler.step()
    assert scheduler.result(ok).status == JobState.DONE


def test_result_store_eviction_under_pressure_keeps_answers_right(
    dense_spec, small_g_module
):
    """A store too small for the union still serves correct (re-solved) results."""
    n = dense_spec.layout.n_contacts
    column_bytes = small_g_module[:, 0].nbytes
    store = ResultStore(max_bytes=2 * column_bytes)  # space for 2 of 16 columns
    with Scheduler(n_workers=1, autostart=False, store=store) as scheduler:
        first = scheduler.submit(JobRequest(dense_spec))
        scheduler.step()
        np.testing.assert_allclose(
            scheduler.result(first).result, small_g_module, rtol=1e-12
        )
        assert store.info()["evictions"] >= n - 2
        # the repeat can only partially hit the store — it must re-solve the
        # evicted columns and still return the right matrix
        solved_before = scheduler.metrics.columns_solved
        again = scheduler.submit(JobRequest(dense_spec))
        scheduler.step()
        np.testing.assert_allclose(
            scheduler.result(again).result, small_g_module, rtol=1e-12
        )
        assert scheduler.metrics.columns_solved > solved_before


def test_priority_orders_groups_within_a_cycle(scheduler, dense_spec, bem_spec):
    low = scheduler.submit(JobRequest(dense_spec, columns=(0,), priority=0))
    high = scheduler.submit(JobRequest(bem_spec, columns=(0,), priority=5))
    scheduler.step()
    low_job, high_job = scheduler.result(low), scheduler.result(high)
    assert low_job.status == JobState.DONE and high_job.status == JobState.DONE
    assert high_job.finished_at <= low_job.finished_at


def test_failed_build_fails_the_whole_group(
    scheduler, small_layout_module, small_profile_module
):
    bogus = SolverSpec(
        "bem", small_layout_module, small_profile_module, {"no_such_option": 1}
    )
    job_id = scheduler.submit(JobRequest(bogus, columns=(0,)))
    scheduler.step()
    job = scheduler.result(job_id)
    assert job.status == JobState.FAILED
    assert "no_such_option" in job.error
    assert scheduler.metrics.jobs_failed == 1


def test_close_fails_pending_jobs_and_rejects_new_ones(dense_spec):
    scheduler = Scheduler(n_workers=1, autostart=False)
    job_id = scheduler.submit(JobRequest(dense_spec, columns=(0,)))
    scheduler.close()
    assert scheduler.result(job_id).status == JobState.FAILED
    with pytest.raises(RuntimeError):
        scheduler.submit(JobRequest(dense_spec, columns=(0,)))
    scheduler.close()  # idempotent


def test_background_dispatcher_serves_concurrent_clients(bem_spec, small_g_module):
    """The autostarted dispatcher coalesces a concurrent burst on its own."""
    with Scheduler(n_workers=1, coalesce_window_s=0.02) as scheduler:
        cols = [(0, 3, 8), (3, 8, 12), (0, 12, 15)]
        results: dict[int, np.ndarray] = {}

        def client(i: int) -> None:
            job_id = scheduler.submit(JobRequest(bem_spec, columns=cols[i]))
            results[i] = scheduler.result(job_id, wait_s=60.0).result

        threads = [threading.Thread(target=client, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        scale = np.abs(small_g_module).max()
        for i, c in enumerate(cols):
            assert results[i] is not None
            assert (
                np.abs(results[i] - small_g_module[:, list(c)]).max() / scale < 1e-8
            )
        # cross-request amortisation: every distinct column solved at most once
        union = {c for cs in cols for c in cs}
        assert scheduler.metrics.columns_solved <= len(union)


def test_extractor_pool_reuses_and_evicts_engines(dense_spec, bem_spec):
    with Scheduler(n_workers=1, autostart=False, max_solvers=1) as scheduler:
        scheduler.submit(JobRequest(dense_spec, columns=(0,)))
        scheduler.step()
        scheduler.submit(JobRequest(dense_spec, columns=(1,)))
        scheduler.step()
        assert scheduler.pool.info()["built"] == 1  # second batch reused it
        scheduler.submit(JobRequest(bem_spec, columns=(0,)))
        scheduler.step()
        info = scheduler.pool.info()
        assert info["built"] == 2 and info["evicted"] == 1 and info["live"] == 1


# -------------------------------------------------------------------- metrics
def test_metrics_snapshot_shapes():
    metrics = ServiceMetrics()
    snap = metrics.snapshot(queue_depth=3)
    assert snap["queue_depth"] == 3
    assert snap["latency_s"]["p50"] is None  # no jobs yet
    metrics.record_submit()
    metrics.record_outcome("done", latency_s=0.5)
    metrics.record_outcome("timeout")
    snap = metrics.snapshot()
    assert snap["jobs"]["done"] == 1 and snap["jobs"]["timeout"] == 1
    assert snap["latency_s"]["p90"] == pytest.approx(0.5)
    assert latency_percentiles([1.0, 2.0, 3.0])["p50"] == pytest.approx(2.0)


# ----------------------------------------------------------------------- HTTP
def test_http_end_to_end_two_clients_coalesce(bem_spec, small_g_module):
    """The CI smoke path: start the server, run two concurrent clients over
    the wire, assert agreement and cross-request amortisation."""
    with ExtractionServer(n_workers=1, coalesce_window_s=0.02) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        assert client.healthz()["ok"] is True
        cols = [(0, 2, 5, 9), (2, 5, 7, 11)]
        results: dict[int, np.ndarray] = {}

        def run_client(i: int) -> None:
            results[i] = client.extract(
                JobRequest(bem_spec, columns=cols[i]), timeout_s=60.0
            )

        threads = [threading.Thread(target=run_client, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        scale = np.abs(small_g_module).max()
        for i, c in enumerate(cols):
            assert np.abs(results[i] - small_g_module[:, list(c)]).max() / scale < 1e-8
        stats = client.stats()
        union = {c for cs in cols for c in cs}
        assert stats["coalescing"]["columns_solved"] <= len(union)
        assert stats["jobs"]["done"] == 2


def test_http_error_paths(dense_spec):
    import json
    import urllib.error
    import urllib.request

    with ExtractionServer(n_workers=1) as server:
        client = ServiceClient(server.url, timeout_s=10.0)
        # unknown job id -> 404, typed (and a KeyError, like the scheduler)
        with pytest.raises(UnknownJobError) as err:
            client.result("job-999999")
        assert err.value.status == 404
        assert isinstance(err.value, KeyError)
        # malformed submit payload -> 400
        request = urllib.request.Request(
            server.url + "/submit",
            data=json.dumps({"request_pickle": "not base64!!"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400
        # unknown path -> 404
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope", timeout=10.0)
        assert err.value.code == 404
        # non-numeric wait_s -> clean JSON 400, not a dropped connection
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                server.url + "/result?job_id=job-000001&wait_s=abc", timeout=10.0
            )
        assert err.value.code == 400
        # wait-for-result long-polls a job to completion
        job_id = client.submit(JobRequest(dense_spec, columns=(0,)))
        snapshot = client.wait(job_id, timeout_s=30.0)
        assert snapshot["status"] == JobState.DONE
        assert snapshot["columns"] == [0]


def test_mixed_columns_and_pairs_request(scheduler, dense_spec, small_g_module):
    job_id = scheduler.submit(
        JobRequest(dense_spec, columns=(0, 3), pairs=((1, 7),))
    )
    scheduler.step()
    job = scheduler.result(job_id)
    assert job.status == JobState.DONE
    np.testing.assert_allclose(job.result, small_g_module[:, [0, 3]], rtol=1e-12)
    np.testing.assert_allclose(job.pair_values, [small_g_module[1, 7]], rtol=1e-12)


def test_http_extract_returns_both_blocks_for_mixed_requests(
    dense_spec, small_g_module
):
    with ExtractionServer(n_workers=1) as server:
        client = ServiceClient(server.url, timeout_s=30.0)
        got = client.extract(
            JobRequest(dense_spec, columns=(0, 3), pairs=((1, 7),)), timeout_s=30.0
        )
        assert isinstance(got, tuple)
        block, pair_values = got
        np.testing.assert_allclose(block, small_g_module[:, [0, 3]], rtol=1e-12)
        np.testing.assert_allclose(pair_values, [small_g_module[1, 7]], rtol=1e-12)


def test_finished_job_retention_is_byte_bounded(dense_spec, small_g_module):
    """A service serving wide results must not hoard them: the oldest
    terminal jobs are dropped once retained result bytes exceed the budget."""
    result_bytes = small_g_module.nbytes  # one dense request retains this much
    with Scheduler(
        n_workers=1, autostart=False, max_result_bytes_retained=2 * result_bytes
    ) as scheduler:
        job_ids = [scheduler.submit(JobRequest(dense_spec)) for _ in range(4)]
        scheduler.step()
        # the two oldest results were evicted, the two newest are retrievable
        for stale in job_ids[:2]:
            with pytest.raises(KeyError):
                scheduler.result(stale)
        for live in job_ids[2:]:
            np.testing.assert_allclose(
                scheduler.result(live).result, small_g_module, rtol=1e-12
            )
