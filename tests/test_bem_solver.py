"""Tests for the eigenfunction black-box substrate solver."""

import numpy as np
import pytest

from repro import EigenfunctionSolver, SubstrateProfile, extract_dense, regular_grid
from repro.substrate.extraction import check_conductance_properties, symmetry_error


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=3, size=48.0, fill=0.5)


@pytest.fixture(scope="module")
def grounded_solver(tiny_layout):
    profile = SubstrateProfile.two_layer_example(size=48.0, grounded_backplane=True)
    return EigenfunctionSolver(tiny_layout, profile, max_panels=32)


@pytest.fixture(scope="module")
def floating_solver(tiny_layout):
    profile = SubstrateProfile.two_layer_example(size=48.0, grounded_backplane=False)
    return EigenfunctionSolver(tiny_layout, profile, max_panels=32)


class TestGroundedBackplane:
    def test_linearity(self, grounded_solver, rng):
        v1 = rng.standard_normal(9)
        v2 = rng.standard_normal(9)
        lhs = grounded_solver.solve_currents(2.0 * v1 - 3.0 * v2)
        rhs = 2.0 * grounded_solver.solve_currents(v1) - 3.0 * grounded_solver.solve_currents(v2)
        assert np.allclose(lhs, rhs, rtol=1e-6, atol=1e-9)

    def test_conductance_properties(self, grounded_solver):
        g = extract_dense(grounded_solver)
        checks = check_conductance_properties(g, grounded_backplane=True)
        assert all(checks.values()), checks

    def test_reciprocity(self, grounded_solver):
        g = extract_dense(grounded_solver)
        assert symmetry_error(g) < 1e-6

    def test_coupling_decays_with_distance(self, grounded_solver):
        g = extract_dense(grounded_solver)
        # contact 0 couples more strongly to its neighbour (1) than to the far corner (8)
        assert abs(g[0, 1]) > abs(g[0, 8])

    def test_unit_voltage_on_all_contacts_pushes_current_into_backplane(self, grounded_solver):
        currents = grounded_solver.solve_currents(np.ones(9))
        assert np.all(currents > 0)

    def test_wrong_input_length(self, grounded_solver):
        with pytest.raises(ValueError):
            grounded_solver.solve_currents(np.ones(4))

    def test_iteration_stats_recorded(self, grounded_solver):
        grounded_solver.solve_currents(np.ones(9))
        assert grounded_solver.mean_iterations_per_solve() > 0


class TestFloatingBackplane:
    def test_currents_sum_to_zero(self, floating_solver, rng):
        v = rng.standard_normal(9)
        currents = floating_solver.solve_currents(v)
        assert abs(currents.sum()) < 1e-6 * np.abs(currents).max()

    def test_constant_voltage_offset_has_no_effect(self, floating_solver, rng):
        v = rng.standard_normal(9)
        i1 = floating_solver.solve_currents(v)
        i2 = floating_solver.solve_currents(v + 5.0)
        assert np.allclose(i1, i2, rtol=1e-5, atol=1e-6 * np.abs(i1).max())

    def test_conductance_properties(self, floating_solver):
        g = extract_dense(floating_solver, symmetrize=True)
        checks = check_conductance_properties(
            g, grounded_backplane=False, symmetry_tol=1e-5, dominance_tol=1e-5
        )
        assert all(checks.values()), checks


class TestResistiveBottomEmulation:
    def test_resistive_bottom_slows_decay(self, tiny_layout):
        """The resistive-layer trick increases far-away coupling relative to nearby coupling."""
        grounded = SubstrateProfile.two_layer_example(size=48.0, grounded_backplane=True)
        emulated = SubstrateProfile.two_layer_example(size=48.0, resistive_bottom=True)
        g1 = extract_dense(EigenfunctionSolver(tiny_layout, grounded, max_panels=32))
        g2 = extract_dense(EigenfunctionSolver(tiny_layout, emulated, max_panels=32))
        ratio1 = abs(g1[0, 8]) / abs(g1[0, 1])
        ratio2 = abs(g2[0, 8]) / abs(g2[0, 1])
        assert ratio2 > ratio1
