"""Tests for the wavelet sparsification pipeline (Chapter 3)."""

import numpy as np
import pytest

from repro import CountingSolver, DenseMatrixSolver
from repro.analysis import evaluate_against_dense, max_relative_error
from repro.core import WaveletSparsifier


@pytest.fixture(scope="module")
def sparsifier(small_hierarchy):
    return WaveletSparsifier(small_hierarchy, order=2)


class TestKeptPattern:
    def test_pattern_symmetric(self, sparsifier):
        pattern = sparsifier.kept_pattern()
        assert (pattern != pattern.T).nnz == 0

    def test_pattern_includes_diagonal(self, sparsifier):
        pattern = sparsifier.kept_pattern().toarray()
        assert np.all(np.diag(pattern))

    def test_pattern_includes_root_rows(self, sparsifier):
        pattern = sparsifier.kept_pattern().toarray()
        for j in sparsifier.basis.root_v_columns():
            assert np.all(pattern[j, :])
            assert np.all(pattern[:, j])


class TestDensePathExtraction:
    def test_transform_dense_is_similarity(self, sparsifier, small_g):
        gw = sparsifier.transform_dense(small_g)
        q = sparsifier.basis.q_matrix.toarray()
        assert np.allclose(q @ gw @ q.T, small_g, atol=1e-8 * np.abs(small_g).max())

    def test_dense_path_accuracy(self, sparsifier, small_g):
        rep = sparsifier.extract_with_dense(small_g)
        report = evaluate_against_dense(rep, small_g)
        # at this tiny size the kept pattern is almost everything, so errors are tiny
        assert report.max_relative_error < 0.05

    def test_dense_path_uses_no_solves(self, sparsifier, small_g):
        rep = sparsifier.extract_with_dense(small_g)
        assert rep.n_solves == 0


class TestCombineSolvesExtraction:
    @pytest.fixture(scope="class")
    def extracted(self, sparsifier, small_g, small_layout):
        counting = CountingSolver(DenseMatrixSolver(small_g, small_layout))
        rep = sparsifier.extract(counting)
        return rep, counting

    def test_accuracy_close_to_dense_path(self, extracted, sparsifier, small_g):
        rep, _ = extracted
        rep_dense = sparsifier.extract_with_dense(small_g)
        diff = np.abs(rep.gw.toarray() - rep_dense.gw.toarray()).max()
        assert diff < 1e-6 * np.abs(small_g).max()

    def test_overall_accuracy(self, extracted, small_g):
        rep, _ = extracted
        assert max_relative_error(rep.to_dense(), small_g) < 0.05

    def test_solve_count_not_more_than_naive(self, extracted, small_g):
        rep, counting = extracted
        assert counting.solve_count <= small_g.shape[0]
        assert rep.n_solves == counting.solve_count

    def test_gw_symmetric(self, extracted):
        rep, _ = extracted
        asym = np.abs(rep.gw.toarray() - rep.gw.toarray().T).max()
        assert asym < 1e-8 * np.abs(rep.gw.toarray()).max()

    def test_thresholding_trades_accuracy_for_sparsity(self, extracted, small_g):
        rep, _ = extracted
        rept = rep.threshold_to_sparsity(rep.sparsity_factor() * 4)
        assert rept.sparsity_factor() > rep.sparsity_factor()
        err_full = max_relative_error(rep.to_dense(), small_g)
        err_thr = max_relative_error(rept.to_dense(), small_g)
        assert err_thr >= err_full


class TestMediumProblem:
    """On the 256-contact regular grid the combine-solves machinery genuinely combines."""

    def test_solve_reduction_and_accuracy(self, medium_hierarchy, medium_g, medium_layout):
        sparsifier = WaveletSparsifier(medium_hierarchy, order=2)
        counting = CountingSolver(DenseMatrixSolver(medium_g, medium_layout))
        rep = sparsifier.extract(counting)
        assert counting.solve_count < medium_g.shape[0]
        report = evaluate_against_dense(rep, medium_g)
        assert report.max_relative_error < 0.02
        assert report.sparsity_factor > 1.2

    def test_sparsify_convenience_with_threshold(self, medium_hierarchy, medium_g, medium_layout):
        sparsifier = WaveletSparsifier(medium_hierarchy, order=2)
        solver = DenseMatrixSolver(medium_g, medium_layout)
        rep = sparsifier.sparsify(solver, threshold_sparsity_multiplier=6.0)
        assert rep.sparsity_factor() > 5.0
        report = evaluate_against_dense(rep, medium_g)
        assert report.fraction_above_10pct < 0.05
