"""Tests for the low-rank sparsification (Chapter 4)."""

import numpy as np
import pytest

from repro import CountingSolver, DenseMatrixSolver
from repro.analysis import evaluate_against_dense, fraction_above, max_relative_error
from repro.core import WaveletSparsifier
from repro.core.lowrank import LowRankSparsifier


@pytest.fixture(scope="module")
def built_small(small_hierarchy, small_g, small_layout):
    counting = CountingSolver(DenseMatrixSolver(small_g, small_layout))
    sp = LowRankSparsifier(small_hierarchy, max_rank=6, seed=2)
    sp.build(counting)
    rep = sp.to_sparsified()
    return sp, rep, counting


class TestRepresentation:
    def test_q_orthogonal_and_complete(self, built_small, small_g):
        _, rep, _ = built_small
        q = rep.q.toarray()
        assert q.shape == (small_g.shape[0], small_g.shape[0])
        assert np.abs(q.T @ q - np.eye(q.shape[0])).max() < 1e-8

    def test_accuracy_unthresholded(self, built_small, small_g):
        _, rep, _ = built_small
        assert max_relative_error(rep.to_dense(), small_g) < 0.15
        assert fraction_above(rep.to_dense(), small_g, 0.10) < 0.01

    def test_gw_symmetric(self, built_small):
        _, rep, _ = built_small
        gw = rep.gw.toarray()
        assert np.abs(gw - gw.T).max() < 1e-6 * np.abs(gw).max()

    def test_solves_counted(self, built_small, small_g):
        sp, rep, counting = built_small
        assert rep.n_solves == counting.solve_count == sp.n_solves
        assert rep.n_solves <= small_g.shape[0] * 6

    def test_to_sparsified_requires_build(self, small_hierarchy):
        sp = LowRankSparsifier(small_hierarchy)
        with pytest.raises(RuntimeError):
            sp.to_sparsified()

    def test_thresholding(self, built_small, small_g):
        _, rep, _ = built_small
        rept = rep.threshold_to_sparsity(rep.sparsity_factor() * 4)
        assert rept.sparsity_factor() > rep.sparsity_factor()
        assert fraction_above(rept.to_dense(), small_g, 0.10) < 0.10


class TestAgainstWavelet:
    """Tables 4.1/4.2: on alternating-size layouts the low-rank method wins."""

    @pytest.fixture(scope="class")
    def comparison(self, alternating_hierarchy, alternating_g, alternating_layout):
        solver = DenseMatrixSolver(alternating_g, alternating_layout)
        lowrank = LowRankSparsifier(alternating_hierarchy, max_rank=6, seed=0)
        lowrank.build(CountingSolver(solver))
        rep_lr = lowrank.to_sparsified()
        wavelet = WaveletSparsifier(alternating_hierarchy, order=2)
        rep_wv = wavelet.extract(CountingSolver(solver))
        return rep_lr, rep_wv

    def test_lowrank_more_accurate_on_alternating_sizes(self, comparison, alternating_g):
        rep_lr, rep_wv = comparison
        err_lr = max_relative_error(rep_lr.to_dense(), alternating_g)
        err_wv = max_relative_error(rep_wv.to_dense(), alternating_g)
        assert err_lr < err_wv

    def test_lowrank_unthresholded_accuracy(self, comparison, alternating_g):
        rep_lr, _ = comparison
        report = evaluate_against_dense(rep_lr, alternating_g)
        assert report.max_relative_error < 0.30
        assert report.fraction_above_10pct < 0.02

    def test_lowrank_not_less_sparse(self, comparison):
        rep_lr, rep_wv = comparison
        assert rep_lr.sparsity_factor() >= rep_wv.sparsity_factor() * 0.9

    def test_thresholded_comparison_matches_paper_direction(self, comparison, alternating_g):
        """Table 4.2: at equal sparsity the wavelet method has far more bad entries."""
        rep_lr, rep_wv = comparison
        rep_lr_t = rep_lr.threshold_to_sparsity(rep_lr.sparsity_factor() * 6)
        rep_wv_t = rep_wv.threshold_to_sparsity(rep_lr_t.sparsity_factor())
        frac_lr = fraction_above(rep_lr_t.to_dense(), alternating_g, 0.10)
        frac_wv = fraction_above(rep_wv_t.to_dense(), alternating_g, 0.10)
        assert frac_lr < frac_wv
