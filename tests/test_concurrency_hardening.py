"""Targeted regression tests for the fixes reprolint's first sweep forced.

Each test pins one concrete repair: an error path that used to leak a
resource (sqlite connection, tiled scratch file, shared-memory segment), a
counter that used to be bumped outside its lock, and the pickle trust
boundary the HTTP server now enforces on ``/submit``.
"""

from __future__ import annotations

import json
import sqlite3
import urllib.error
from multiprocessing import shared_memory

import numpy as np
import pytest

from importlib import import_module

import repro.service.persistence as persistence_mod
import repro.service.server as server_mod
import repro.substrate.tiled as tiled_mod

# ``repro.substrate`` re-exports a ``factor_cache()`` function under the same
# name as the module, so a plain ``import ... as`` would bind the function
factor_cache_mod = import_module("repro.substrate.factor_cache")
from repro import regular_grid
from repro.service import (
    ExtractionServer,
    JobRequest,
    JobState,
    Scheduler,
    ServiceClient,
    ServiceError,
)
from repro.service.persistence import JobJournal, SqliteResultBackend
from repro.service.server import _is_loopback_address
from repro.substrate.factor_cache import FactorPlane, SharedFactorHandle
from repro.substrate.parallel import SolverSpec
from repro.substrate.tiled import TiledCholeskyFactor


@pytest.fixture(scope="module")
def tiny_spec():
    """4-contact dense spec: cheap enough to solve inside a unit test."""
    layout = regular_grid(n_side=2, size=128.0, fill=0.5)
    g = 4.0 * np.eye(4) - 0.5 * (np.ones((4, 4)) - np.eye(4))
    return SolverSpec.dense(g, layout)


# ------------------------------------------------------- sqlite backend init
class _FailingConn:
    def __init__(self):
        self.closed = False

    def execute(self, *args):
        raise sqlite3.OperationalError("disk I/O error")

    def close(self):
        self.closed = True


def test_sqlite_backend_init_failure_closes_connection(tmp_path, monkeypatch):
    fake = _FailingConn()
    monkeypatch.setattr(
        persistence_mod.sqlite3, "connect", lambda *args, **kwargs: fake
    )
    with pytest.raises(sqlite3.OperationalError):
        SqliteResultBackend(tmp_path / "results.sqlite")
    assert fake.closed, "half-initialised connection leaked"


# -------------------------------------------------------- journal corruption
def test_journal_recover_counts_corrupt_lines_under_lock(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text("this is not a journal entry\n", encoding="utf-8")
    journal = JobJournal(path)
    try:
        with pytest.warns(RuntimeWarning, match="corrupt journal entry"):
            replay, known_ids, max_seq = journal.recover()
        assert replay == [] and known_ids == set() and max_seq == 0
        assert journal.info()["corrupt_skipped"] == 1
    finally:
        journal.close()


# ------------------------------------------------------- tiled scratch files
def test_tiled_scratch_file_unlinked_when_memmap_fails(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TILED_SCRATCH_DIR", str(tmp_path))

    def failing_memmap(*args, **kwargs):
        raise OSError("cannot map scratch file")

    monkeypatch.setattr(tiled_mod.np, "memmap", failing_memmap)
    with pytest.raises(OSError, match="cannot map"):
        TiledCholeskyFactor(n=8, spill_over_bytes=0)  # forces the spill path
    assert list(tmp_path.iterdir()) == [], "orphaned mkstemp scratch file"


# -------------------------------------------------- shared-memory factor plane
@pytest.fixture
def tracked_segments(monkeypatch):
    """Route segment creation/attachment through a subclass that records
    every instance, so tests can assert release without knowing names."""
    captured = []

    class TrackingSharedMemory(shared_memory.SharedMemory):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            captured.append(self)

    monkeypatch.setattr(shared_memory, "SharedMemory", TrackingSharedMemory)
    return captured


class _UnserialisablePayload:
    """Quacks like an array for spec computation but cannot be copied into
    the segment, so publish fails after creating the shared memory."""

    shape = (2,)
    dtype = np.dtype(np.float64)
    nbytes = 16


def test_publish_failure_closes_and_unlinks_segment(monkeypatch, tracked_segments):
    bad_payload = _UnserialisablePayload()
    monkeypatch.setattr(
        factor_cache_mod, "_flatten_factor", lambda factor: ({"kind": "x"}, [bad_payload])
    )
    plane = FactorPlane()
    with pytest.raises(TypeError):
        plane.publish(("key",), object())
    assert plane._segments == []
    assert len(tracked_segments) == 1
    leaked = tracked_segments[0]
    with pytest.raises(FileNotFoundError):
        # reprolint: disable=RR200 -- asserted to raise: no segment is ever attached
        shared_memory.SharedMemory(name=leaked.name)


def test_attach_failure_closes_this_processes_mapping(monkeypatch, tracked_segments):
    owner = shared_memory.SharedMemory(create=True, size=16)
    try:
        handle = SharedFactorHandle(
            key=("key",),
            segment_name=owner.name,
            meta={"kind": "x"},
            specs=((0, (2,), "<f8"),),
            nbytes=16,
        )

        def failing_rebuild(meta, arrays):
            raise RuntimeError("torn handle")

        monkeypatch.setattr(factor_cache_mod, "_rebuild_factor", failing_rebuild)
        with pytest.raises(RuntimeError, match="torn handle"):
            factor_cache_mod.attach_shared_factor(handle)
        attached = tracked_segments[-1]
        assert attached is not owner
        assert attached.buf is None, "failed attach left its mapping open"
    finally:
        owner.close()
        owner.unlink()


# ------------------------------------------------ scheduler solve attribution
def test_attributed_solves_visible_in_stats(tiny_spec):
    scheduler = Scheduler(n_workers=1, autostart=False)
    try:
        scheduler.submit(JobRequest(tiny_spec, columns=(0, 2)))
        scheduler.step()
        stats = scheduler.stats()
        assert stats["attributed_solves"] >= 1
    finally:
        scheduler.close()


# -------------------------------------------------------- pickle trust boundary
@pytest.mark.parametrize(
    ("host", "trusted"),
    [
        ("", True),  # AF_UNIX / missing peer address
        ("127.0.0.1", True),
        ("127.8.9.10", True),  # anywhere in 127/8
        ("::1", True),
        ("10.0.0.1", False),
        ("192.168.1.20", False),
        ("fe80::1%eth0", False),  # zone id must not break parsing
        ("not-an-address", False),
    ],
)
def test_is_loopback_address(host, trusted):
    assert _is_loopback_address(host) is trusted


def test_pickle_submit_refused_for_non_loopback_peer(tiny_spec, monkeypatch):
    with ExtractionServer(n_workers=1) as server:
        client = ServiceClient(server.url, timeout_s=10.0)
        monkeypatch.setattr(server_mod, "_is_loopback_address", lambda host: False)
        with pytest.raises(ServiceError) as err:
            with pytest.warns(DeprecationWarning):
                client.submit_pickle(JobRequest(tiny_spec, columns=(0,)))
        assert err.value.status == 403 and err.value.code == "forbidden"
        assert "pickle" in str(err.value)
        # the schema-first /v1 wire carries no pickle: any peer may use it
        job_id = client.submit(JobRequest(tiny_spec, columns=(0,)))
        assert client.wait(job_id, timeout_s=30.0)["status"] == JobState.DONE
        assert client.healthz()["ok"] is True


def test_pickle_submit_allowed_again_with_explicit_override(tiny_spec, monkeypatch):
    with ExtractionServer(n_workers=1, allow_untrusted_pickle=True) as server:
        monkeypatch.setattr(server_mod, "_is_loopback_address", lambda host: False)
        client = ServiceClient(server.url, timeout_s=30.0)
        with pytest.warns(DeprecationWarning):
            job_id = client.submit_pickle(JobRequest(tiny_spec, columns=(0,)))
        snapshot = client.wait(job_id, timeout_s=30.0)
        assert snapshot["status"] == JobState.DONE
