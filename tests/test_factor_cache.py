"""Tests for the process-wide factor/plan cache.

Covers the cache mechanics (LRU eviction under a byte budget, per-kind entry
caps, hit/miss counters, oversized rejection) and the solver integrations:
a second eigenfunction or finite-difference solver over the same
``(layout, profile, grid)`` must load its direct factor from the cache
instead of rebuilding it, and dispatch must treat a warm cache as a cached
factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DispatchPolicy,
    EigenfunctionSolver,
    FactorCache,
    SubstrateProfile,
    extract_dense,
    factor_cache_clear,
    factor_cache_info,
    regular_grid,
)
from repro.substrate.bem.solver import BEM_FACTOR_KIND
from repro.substrate.fd import FDDirectEngine, FiniteDifferenceSolver
from repro.substrate.fd.direct import FD_FACTOR_KIND


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=4, size=64.0, fill=0.5)


def _profile(grounded: bool = True) -> SubstrateProfile:
    return SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=grounded)


@pytest.fixture(autouse=True)
def _clean_factor_kinds():
    factor_cache_clear(BEM_FACTOR_KIND)
    factor_cache_clear(FD_FACTOR_KIND)
    yield
    factor_cache_clear(BEM_FACTOR_KIND)
    factor_cache_clear(FD_FACTOR_KIND)


# ------------------------------------------------------------- cache mechanics
def test_put_get_and_counters():
    cache = FactorCache(max_bytes=1 << 20)
    key = ("kind_a", "x", 1)
    assert cache.get(key) is None
    assert cache.misses == 1
    value = np.ones(8)
    assert cache.put(key, value) is value
    assert cache.get(key) is value
    assert cache.hits == 1
    info = cache.cache_info()
    assert info["entries"] == 1
    assert info["by_kind"]["kind_a"]["hits"] == 1
    assert info["by_kind"]["kind_a"]["misses"] == 1


def test_byte_budget_evicts_lru():
    cache = FactorCache(max_bytes=10 * 800)  # room for 10 100-double arrays
    for i in range(12):
        cache.put(("k", i), np.zeros(100))
    info = cache.cache_info()
    assert info["bytes"] <= cache.max_bytes
    assert cache.evictions >= 2
    # the oldest entries were evicted, the newest survive
    assert cache.get(("k", 0)) is None
    assert cache.get(("k", 11)) is not None


def test_recency_refresh_protects_hot_entries():
    cache = FactorCache(max_bytes=3 * 800)
    hot = cache.put(("k", "hot"), np.zeros(100))
    for i in range(8):
        cache.put(("k", i), np.zeros(100))
        assert cache.get(("k", "hot")) is hot  # touched every round


def test_oversized_entry_is_returned_but_not_stored():
    cache = FactorCache(max_bytes=100)
    value = np.zeros(1000)
    assert cache.put(("k", "big"), value) is value
    assert cache.cache_info()["entries"] == 0
    assert cache.oversized == 1


def test_kind_limits_and_kind_clear():
    cache = FactorCache(max_bytes=1 << 20)
    cache.set_kind_limit("capped", 3)
    for i in range(6):
        cache.put(("capped", i), np.zeros(4))
        cache.put(("free", i), np.zeros(4))
    assert cache.count("capped") == 3
    assert cache.count("free") == 6
    cache.clear("capped")
    assert cache.count("capped") == 0
    assert cache.count("free") == 6


def test_contains_is_counter_neutral():
    cache = FactorCache(max_bytes=1 << 20)
    cache.put(("k", 1), np.zeros(4))
    before = (cache.hits, cache.misses)
    assert cache.contains(("k", 1))
    assert not cache.contains(("k", 2))
    assert (cache.hits, cache.misses) == before


def test_set_budget_evicts_immediately():
    cache = FactorCache(max_bytes=1 << 20)
    for i in range(4):
        cache.put(("k", i), np.zeros(100))
    cache.set_budget(2 * 800)
    assert cache.cache_info()["bytes"] <= 2 * 800


def test_get_or_build_builds_once():
    cache = FactorCache(max_bytes=1 << 20)
    calls = []

    def builder():
        calls.append(1)
        return np.zeros(4)

    first = cache.get_or_build(("k", 1), builder)
    again = cache.get_or_build(("k", 1), builder)
    assert first is again
    assert len(calls) == 1


# -------------------------------------------------------- layout fingerprints
def test_layout_fingerprint_keys_on_geometry_not_names(tiny_layout):
    same = regular_grid(n_side=4, size=64.0, fill=0.5)
    assert tiny_layout.fingerprint == same.fingerprint
    other = regular_grid(n_side=4, size=64.0, fill=0.4)
    assert tiny_layout.fingerprint != other.fingerprint
    assert hash(tiny_layout.fingerprint) == hash(same.fingerprint)


# ------------------------------------------------------- solver integrations
def test_bem_factor_shared_across_solver_instances(tiny_layout):
    def build():
        return EigenfunctionSolver(
            tiny_layout,
            _profile(),
            max_panels=32,
            dispatch=DispatchPolicy(force_path="direct"),
        )

    first = build()
    assert first.prepare_direct()
    misses_after_build = factor_cache_info()["by_kind"][BEM_FACTOR_KIND]["misses"]
    second = build()
    assert second.prepare_direct()
    # the second solver loaded the cached factor: identical object, no rebuild
    assert second._direct_factor is first._direct_factor
    info = factor_cache_info()["by_kind"][BEM_FACTOR_KIND]
    assert info["misses"] == misses_after_build
    assert info["hits"] >= 1
    # and the solves agree with a cache-free solver
    g_cached = extract_dense(second)
    clean = EigenfunctionSolver(
        tiny_layout,
        _profile(),
        max_panels=32,
        dispatch=DispatchPolicy(force_path="direct"),
        use_factor_cache=False,
    )
    g_clean = extract_dense(clean)
    assert np.allclose(g_cached, g_clean, rtol=0.0, atol=1e-10 * np.abs(g_clean).max())


def test_bem_dispatch_sees_warm_cache_as_cached_factor(tiny_layout):
    warmer = EigenfunctionSolver(tiny_layout, _profile(), max_panels=32)
    assert warmer.prepare_direct()
    fresh = EigenfunctionSolver(tiny_layout, _profile(), max_panels=32)
    assert fresh._direct_factor is None
    assert fresh._factor_available()
    # a narrow block that would normally stay iterative now routes direct
    fresh.solve_many(np.eye(tiny_layout.n_contacts)[:, :1])
    assert fresh.last_dispatch.path == "direct"
    assert fresh.last_dispatch.reason == "cached factor"


def test_bem_use_factor_cache_false_is_isolated(tiny_layout):
    warmer = EigenfunctionSolver(tiny_layout, _profile(), max_panels=32)
    assert warmer.prepare_direct()
    private = EigenfunctionSolver(
        tiny_layout, _profile(), max_panels=32, use_factor_cache=False
    )
    assert not private._factor_available()
    assert private.prepare_direct()
    assert private._direct_factor is not warmer._direct_factor


def test_fd_factor_shared_across_engines(tiny_layout):
    def build():
        return FiniteDifferenceSolver(
            tiny_layout, _profile(), nx=8, ny=8, planes_per_layer=2
        )

    first = build()
    assert first.prepare_direct()
    second = build()
    assert second.prepare_direct()
    assert second._direct_engine._lu is first._direct_engine._lu
    # a cache-free engine factors privately
    private = FDDirectEngine(build().assembly, use_cache=False)
    private.prepare()
    assert private._lu is not first._direct_engine._lu


def test_fd_direct_engine_solves_match_iterative(tiny_layout):
    solver = FiniteDifferenceSolver(
        tiny_layout,
        _profile(),
        nx=8,
        ny=8,
        planes_per_layer=2,
        rtol=1e-12,
        dispatch=DispatchPolicy(force_path="direct"),
    )
    reference = FiniteDifferenceSolver(
        tiny_layout,
        _profile(),
        nx=8,
        ny=8,
        planes_per_layer=2,
        rtol=1e-12,
        dispatch=DispatchPolicy(force_path="iterative"),
    )
    v = np.random.default_rng(0).standard_normal((tiny_layout.n_contacts, 6))
    out_direct = solver.solve_many(v)
    out_iter = reference.solve_many(v)
    assert solver.last_dispatch.path == "direct"
    assert solver.stats.n_direct_solves == 6
    assert reference.stats.n_iterative_solves == 6
    scale = np.abs(out_iter).max()
    assert np.allclose(out_direct, out_iter, rtol=0.0, atol=1e-8 * scale)


@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_fd_direct_extraction_matches_iterative(tiny_layout, grounded):
    kwargs = {"nx": 8, "ny": 8, "planes_per_layer": 2, "rtol": 1e-12}
    direct = FiniteDifferenceSolver(
        tiny_layout,
        _profile(grounded),
        dispatch=DispatchPolicy(force_path="direct"),
        **kwargs,
    )
    iterative = FiniteDifferenceSolver(
        tiny_layout,
        _profile(grounded),
        dispatch=DispatchPolicy(force_path="iterative"),
        **kwargs,
    )
    g_direct = extract_dense(direct)
    g_iter = extract_dense(iterative)
    assert np.allclose(
        g_direct, g_iter, rtol=0.0, atol=1e-8 * np.abs(g_iter).max()
    )


def test_fd_adaptive_dispatch_is_iteration_aware(tiny_layout):
    """The near-exact fast-Poisson preconditioner must stay iterative; the
    weak Jacobi preconditioner must cross over to the sparse direct engine
    for a full-width extraction block."""
    fast = FiniteDifferenceSolver(
        tiny_layout, _profile(), nx=16, ny=16, planes_per_layer=2
    )
    extract_dense(fast)
    assert fast.last_dispatch.path == "iterative"
    assert fast.stats.n_direct_solves == 0

    weak = FiniteDifferenceSolver(
        tiny_layout,
        _profile(),
        nx=16,
        ny=16,
        planes_per_layer=2,
        preconditioner="jacobi",
    )
    extract_dense(weak)
    assert weak.last_dispatch.path == "direct"
    assert weak.stats.n_direct_solves == tiny_layout.n_contacts


def test_fd_node_ceiling_forces_iterative(tiny_layout):
    solver = FiniteDifferenceSolver(
        tiny_layout,
        _profile(),
        nx=8,
        ny=8,
        planes_per_layer=2,
        preconditioner="jacobi",
        dispatch=DispatchPolicy(max_direct_nodes=10),
    )
    extract_dense(solver)
    assert solver.last_dispatch.path == "iterative"
    assert "max_direct_nodes" in solver.last_dispatch.reason
    assert not solver.prepare_direct()


def test_choose_sparse_policy_unit():
    policy = DispatchPolicy()
    # weakly preconditioned wide block: direct
    wide = policy.choose_sparse(
        n_nodes=8192, n_rhs=256, expected_iterations=130.0
    )
    assert wide.path == "direct"
    # near-exact preconditioner: iterative even with a cached factor
    fast = policy.choose_sparse(
        n_nodes=8192, n_rhs=256, factor_cached=True, expected_iterations=1.0
    )
    assert fast.path == "iterative"
    # narrow cold block never factors
    narrow = policy.choose_sparse(n_nodes=8192, n_rhs=1, expected_iterations=130.0)
    assert narrow.path == "iterative"
    # failure latch and forced paths
    failed = policy.choose_sparse(
        n_nodes=8192, n_rhs=256, factor_failed=True, expected_iterations=130.0
    )
    assert failed.path == "iterative"
    forced = DispatchPolicy(force_path="direct")
    assert forced.choose_sparse(n_nodes=100, n_rhs=1).path == "direct"
    capped = DispatchPolicy(force_path="direct", max_direct_nodes=10)
    assert capped.choose_sparse(n_nodes=100, n_rhs=64).path == "iterative"


def test_eigenvalue_tables_live_in_factor_cache():
    from repro.substrate.bem import eigenvalue_table

    profile = SubstrateProfile.uniform(64, 20.0)
    table = eigenvalue_table(8, 8, profile)
    info = factor_cache_info()["by_kind"]["eigenvalue_table"]
    assert info["entries"] >= 1
    assert eigenvalue_table(8, 8, profile) is table
