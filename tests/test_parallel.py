"""Tests for the process-parallel extraction engine.

The :class:`~repro.substrate.parallel.ParallelExtractor` is a drop-in
``SubstrateSolver``: sharding a ``solve_many`` block across worker processes
must reproduce the serial results to solver tolerance, charge exactly the
serial solve counts through a :class:`CountingSolver`, and merge the
per-process :class:`SolveStats` into one report.  ``SolverSpec`` must
round-trip through pickle into a subprocess for every example configuration.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import (
    CountingSolver,
    ParallelExtractor,
    SolveStats,
    SolverSpec,
    SquareHierarchy,
    SubstrateProfile,
    extract_columns,
    extract_dense,
    regular_grid,
    solve_in_subprocess,
)
from repro.core.wavelet import WaveletSparsifier
from repro.experiments import chapter4_examples, paper_examples


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=4, size=64.0, fill=0.5)


def _profile(grounded: bool = True) -> SubstrateProfile:
    return SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=grounded)


def _bem_spec(layout, grounded=True, **options):
    options.setdefault("max_panels", 32)
    options.setdefault("fft_workers", 1)
    return SolverSpec.bem(layout, _profile(grounded), **options)


# ------------------------------------------------------------------ SolveStats
def test_solve_stats_merge_adds_counts_and_keeps_iterative_mean():
    a = SolveStats()
    a.record(10)
    a.record(20)
    a.record_direct(5)
    b = SolveStats()
    b.record(30)
    b.record_direct(7)
    merged = a.merge(b)
    assert merged is a
    assert a.n_iterative_solves == 3
    assert a.n_direct_solves == 12
    assert a.n_solves == 15
    assert a.total_iterations == 60
    # mean stays per-iterative-solve: direct solves never dilute it
    assert a.mean_iterations == 20.0
    assert a.iterations_per_solve == [10, 20, 30]


def test_solve_stats_merge_empty_is_identity():
    a = SolveStats()
    a.record(4)
    a.merge(SolveStats())
    assert a.as_dict() == {
        "n_solves": 1,
        "n_iterative_solves": 1,
        "n_direct_solves": 0,
        "total_iterations": 4,
        "mean_iterations": 4.0,
        "n_factor_attaches": 0,
        "n_factor_rebuilds": 0,
    }


# ------------------------------------------------------------------ SolverSpec
def test_solver_spec_validation(tiny_layout):
    with pytest.raises(ValueError):
        SolverSpec("quantum", tiny_layout, _profile())
    with pytest.raises(ValueError):
        SolverSpec("bem", tiny_layout, None)
    with pytest.raises(ValueError):
        SolverSpec("dense", tiny_layout, None)


def test_solver_spec_build_overrides(tiny_layout):
    spec = _bem_spec(tiny_layout, rtol=1e-6)
    solver = spec.build(rtol=1e-10)
    assert solver.rtol == 1e-10
    assert solver.operator.fft_workers is None  # fft_workers=1 resolves to None


@pytest.mark.parametrize("name", ["1a", "1b", "2", "3", "ch4-1", "ch4-2", "ch4-3"])
def test_example_specs_roundtrip_through_subprocess(name):
    """Every example config builds a spec that pickles, rebuilds an
    equivalent solver in a subprocess, and matches the parent per-column."""
    table = paper_examples(n_side=4, size=64.0)
    table.update(chapter4_examples(n_side=4, size=64.0))
    config = table[name]
    layout = config.build_layout()
    spec = config.build_spec(layout, fft_workers=1)
    rebuilt = pickle.loads(pickle.dumps(spec))
    assert rebuilt.kind == spec.kind
    assert rebuilt.layout.fingerprint == layout.fingerprint

    v = np.eye(layout.n_contacts)[:, :2]
    parent = spec.build().solve_many(v)
    child = solve_in_subprocess(spec, v)
    scale = np.abs(parent).max()
    assert np.abs(child - parent).max() <= 1e-10 * scale


def test_large_example_specs_pickle():
    """The Table 4.3 configs build picklable specs too (no subprocess solve:
    they are exercised at reduced scale by the parametrised test above)."""
    table = chapter4_examples(n_side=4, size=64.0)
    for name in ("ch4-4", "ch4-5"):
        spec = table[name].build_spec()
        rebuilt = pickle.loads(pickle.dumps(spec))
        assert rebuilt.layout.fingerprint == spec.layout.fingerprint


# --------------------------------------------------------------- equivalence
@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_parallel_matches_serial_extraction(tiny_layout, grounded):
    spec = _bem_spec(tiny_layout, grounded, rtol=1e-10)
    g_serial = extract_dense(spec.build())
    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=2) as ex:
        g_parallel = ex.extract_dense()
    scale = np.abs(g_serial).max()
    assert np.abs(g_parallel - g_serial).max() <= 1e-10 * scale


def test_parallel_extract_columns_and_narrow_inline(tiny_layout):
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    serial = spec.build()
    columns = np.array([5, 1, 9])
    ref = extract_columns(serial, columns)
    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=8) as ex:
        out = ex.extract_columns(columns)  # 3 < 8 columns: solved inline
        assert ex._pool is None  # narrow block never started the pool
        wide = ex.extract_dense()
        assert ex._pool is not None
    assert np.abs(out - ref).max() <= 1e-10 * np.abs(ref).max()
    assert np.abs(wide - extract_dense(serial)).max() <= 1e-10 * np.abs(ref).max()


def test_parallel_fd_backend(tiny_layout):
    spec = SolverSpec.fd(
        tiny_layout,
        _profile(),
        nx=8,
        ny=8,
        planes_per_layer=2,
        rtol=1e-10,
        fft_workers=1,
    )
    g_serial = extract_dense(spec.build())
    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=2) as ex:
        g_parallel = ex.extract_dense()
    assert np.abs(g_parallel - g_serial).max() <= 1e-10 * np.abs(g_serial).max()


def test_parallel_dense_spec_and_pickled_fallback(tiny_layout, rng=None):
    rng = np.random.default_rng(0)
    n = tiny_layout.n_contacts
    a = rng.standard_normal((n, n))
    g = a @ a.T + n * np.eye(n)
    spec = SolverSpec.dense(g, tiny_layout)
    with ParallelExtractor(
        spec, n_workers=2, min_parallel_columns=2, use_shared_memory=False
    ) as ex:
        out = ex.extract_dense()
    assert np.allclose(out, g, rtol=0.0, atol=1e-12 * np.abs(g).max())


def test_parallel_gauge_constants_match_serial(tiny_layout):
    spec = _bem_spec(tiny_layout, grounded=False, rtol=1e-10)
    serial = spec.build()
    v = np.eye(tiny_layout.n_contacts)
    serial.solve_many(v)
    gauges_serial = serial.last_gauge_constants
    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=2) as ex:
        ex.solve_many(v)
        gauges_parallel = ex.last_gauge_constants
    assert gauges_parallel is not None
    scale = np.abs(gauges_serial).max()
    assert np.abs(gauges_parallel - gauges_serial).max() <= 1e-8 * scale


def test_parallel_single_column_and_solve_currents(tiny_layout):
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    serial = spec.build()
    e = np.zeros(tiny_layout.n_contacts)
    e[3] = 1.0
    with ParallelExtractor(spec, n_workers=2) as ex:
        out = ex.solve_currents(e.copy())
    ref = serial.solve_currents(e)
    assert np.abs(out - ref).max() <= 1e-10 * np.abs(ref).max()


# ---------------------------------------------------------------- accounting
def test_counting_attribution_identical_to_serial(tiny_layout):
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    serial_counting = CountingSolver(spec.build())
    extract_dense(serial_counting)
    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=2) as ex:
        parallel_counting = CountingSolver(ex)
        extract_dense(parallel_counting)
    assert parallel_counting.solve_count == serial_counting.solve_count
    assert parallel_counting.solve_count == tiny_layout.n_contacts


def test_parallel_stats_merge_matches_serial_totals(tiny_layout):
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    serial = spec.build()
    extract_dense(serial)
    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=2) as ex:
        ex.extract_dense()
        merged = ex.stats
    assert merged.n_solves == serial.stats.n_solves == tiny_layout.n_contacts


def test_wavelet_extraction_through_parallel_extractor(tiny_layout):
    """The wavelet combine-solves pipeline runs unchanged through the
    parallel engine: same attributed solve count, same Gws."""
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    hierarchy = SquareHierarchy(tiny_layout, max_level=2)

    serial_counting = CountingSolver(spec.build())
    rep_serial = WaveletSparsifier(hierarchy, order=2).extract(serial_counting)

    with ParallelExtractor(spec, n_workers=2, min_parallel_columns=2) as ex:
        parallel_counting = CountingSolver(ex)
        rep_parallel = WaveletSparsifier(hierarchy, order=2).extract(parallel_counting)

    assert parallel_counting.solve_count == serial_counting.solve_count
    assert rep_parallel.n_solves == rep_serial.n_solves
    diff = (rep_parallel.gw - rep_serial.gw).toarray()
    scale = np.abs(rep_serial.gw.toarray()).max()
    assert np.abs(diff).max() <= 1e-8 * scale


# ------------------------------------------------------------------- plumbing
def test_parallel_rejects_bad_shapes_and_workers(tiny_layout):
    spec = _bem_spec(tiny_layout)
    with pytest.raises(ValueError):
        ParallelExtractor(spec, n_workers=0)
    ex = ParallelExtractor(spec, n_workers=1)
    with pytest.raises(ValueError):
        ex.solve_many(np.zeros(tiny_layout.n_contacts))
    with pytest.raises(ValueError):
        ex.solve_many(np.zeros((tiny_layout.n_contacts + 1, 3)))
    assert ex.solve_many(np.zeros((tiny_layout.n_contacts, 0))).shape == (
        tiny_layout.n_contacts,
        0,
    )


def test_inline_path_preserves_solver_iteration_history(tiny_layout):
    """Regression: per-block stats deltas must not erase the worker solver's
    cumulative history — the FD solver's iteration-aware dispatch feeds on
    ``stats.n_iterative_solves`` observed across earlier blocks."""
    spec = SolverSpec.fd(
        tiny_layout, _profile(), nx=8, ny=8, planes_per_layer=2, fft_workers=1
    )
    ex = ParallelExtractor(spec, n_workers=1)
    v = np.eye(tiny_layout.n_contacts)[:, :4]
    ex.solve_many(v)
    ex.solve_many(v)
    local = ex._local
    # cumulative on the solver, per-block deltas merged on the extractor
    assert local.stats.n_solves == 8
    assert ex.stats.n_solves == 8
    assert local._expected_iterations() == local.stats.mean_iterations


def test_warm_up_builds_workers_and_close_is_idempotent(tiny_layout):
    spec = _bem_spec(tiny_layout)
    ex = ParallelExtractor(spec, n_workers=2, prepare_direct=True)
    ex.warm_up()
    assert ex._pool is not None
    out = ex.solve_many(np.eye(tiny_layout.n_contacts))
    assert out.shape == (tiny_layout.n_contacts, tiny_layout.n_contacts)
    ex.close()
    ex.close()
    assert ex._pool is None
