"""Tests for the multilevel square hierarchy (interaction lists, locality)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Contact, ContactLayout, SquareHierarchy, regular_grid


@pytest.fixture(scope="module")
def hier():
    return SquareHierarchy(regular_grid(n_side=8, size=128.0, fill=0.5), max_level=3)


class TestConstruction:
    def test_every_contact_assigned_once(self, hier):
        finest = hier.squares_at_level(hier.max_level)
        all_contacts = np.sort(np.concatenate([s.contact_indices for s in finest]))
        assert np.array_equal(all_contacts, np.arange(hier.layout.n_contacts))

    def test_root_square_holds_everything(self, hier):
        root = hier.squares_at_level(0)
        assert len(root) == 1
        assert root[0].n_contacts == hier.layout.n_contacts

    def test_parent_contains_children(self, hier):
        for level in range(1, hier.max_level + 1):
            for sq in hier.squares_at_level(level):
                parent = hier.parent(sq)
                assert parent is not None
                assert set(sq.contact_indices) <= set(parent.contact_indices)

    def test_children_partition_parent(self, hier):
        for level in range(0, hier.max_level):
            for sq in hier.squares_at_level(level):
                kids = hier.children(sq)
                union = np.sort(np.concatenate([k.contact_indices for k in kids]))
                assert np.array_equal(union, sq.contact_indices)

    def test_contact_crossing_boundary_rejected(self):
        layout = ContactLayout([Contact(30.0, 30.0, 10.0, 10.0)], 128.0, 128.0)
        with pytest.raises(ValueError):
            SquareHierarchy(layout, max_level=3)  # square side 16, contact crosses x=32

    def test_auto_level_selection(self):
        layout = regular_grid(n_side=8, size=128.0)
        hier = SquareHierarchy(layout, max_level=None, target_per_square=4)
        assert hier.max_level >= 2

    def test_max_level_too_small_rejected(self):
        with pytest.raises(ValueError):
            SquareHierarchy(regular_grid(n_side=4), max_level=1)


class TestNeighbourhoods:
    def test_neighbors_are_adjacent(self, hier):
        for sq in hier.squares_at_level(3):
            for nb in hier.neighbors(sq):
                assert nb.level == sq.level
                assert max(abs(nb.i - sq.i), abs(nb.j - sq.j)) == 1

    def test_interactive_list_is_disjoint_from_local(self, hier):
        for sq in hier.squares_at_level(3):
            local_keys = {s.key for s in hier.local_squares(sq)}
            inter_keys = {s.key for s in hier.interactive_squares(sq)}
            assert not (local_keys & inter_keys)

    def test_interactive_parents_are_local_to_parent(self, hier):
        for sq in hier.squares_at_level(3):
            parent = hier.parent(sq)
            parent_local = {s.key for s in hier.local_squares(parent)}
            for d in hier.interactive_squares(sq):
                assert hier.parent(d).key in parent_local

    def test_interactive_symmetry(self, hier):
        for sq in hier.squares_at_level(3):
            for d in hier.interactive_squares(sq):
                back = {s.key for s in hier.interactive_squares(d)}
                assert sq.key in back

    def test_levels_below_two_have_empty_interaction_lists(self, hier):
        for level in (0, 1):
            for sq in hier.squares_at_level(level):
                assert hier.interactive_squares(sq) == []

    def test_interactive_and_local_covers_parent_local_children(self, hier):
        for sq in hier.squares_at_level(3):
            parent = hier.parent(sq)
            expected = set()
            for pl in hier.local_squares(parent):
                expected.update(k.key for k in hier.children(pl))
            got = {s.key for s in hier.interactive_and_local(sq)}
            assert got == expected

    def test_well_separated_cross_level(self, hier):
        coarse = hier.get((2, 0, 0))
        fine_far = hier.get((3, 7, 7))
        fine_near = hier.get((3, 1, 1))
        assert hier.well_separated(coarse, fine_far)
        assert not hier.well_separated(coarse, fine_near)
        # symmetric in argument order
        assert hier.well_separated(fine_far, coarse)

    def test_are_local_requires_same_level(self, hier):
        a = hier.get((2, 0, 0))
        b = hier.get((3, 0, 0))
        with pytest.raises(ValueError):
            hier.are_local(a, b)

    def test_ancestor_key(self, hier):
        sq = hier.get((3, 5, 6))
        assert hier.ancestor_key(sq, 2) == (2, 2, 3)
        assert hier.ancestor_key(sq, 0) == (0, 0, 0)
        with pytest.raises(ValueError):
            hier.ancestor_key(hier.get((2, 0, 0)), 3)


class TestUtilities:
    def test_contacts_in_union(self, hier):
        squares = list(hier.squares_at_level(3))[:3]
        union = hier.contacts_in(squares)
        manual = np.unique(np.concatenate([s.contact_indices for s in squares]))
        assert np.array_equal(union, manual)

    def test_finest_square_of_contact(self, hier):
        for idx in range(0, hier.layout.n_contacts, 7):
            sq = hier.finest_square_of_contact(idx)
            assert idx in sq.contact_indices

    def test_statistics(self, hier):
        stats = hier.statistics()
        assert stats["n_contacts"] == 64
        assert stats["max_level"] == 3


@settings(max_examples=25, deadline=None)
@given(
    n_side=st.sampled_from([8, 16]),
    level=st.integers(min_value=2, max_value=3),
)
def test_property_interaction_plus_local_equals_parent_neighborhood(n_side, level):
    """For any square, I_s and L_s partition the children of the parent's local squares."""
    max_level = n_side.bit_length() - 1
    hier = SquareHierarchy(regular_grid(n_side=n_side, size=128.0), max_level=max_level)
    for sq in hier.squares_at_level(level):
        local = {s.key for s in hier.local_squares(sq)}
        inter = {s.key for s in hier.interactive_squares(sq)}
        parent = hier.parent(sq)
        expected = set()
        for pl in hier.local_squares(parent):
            expected.update(c.key for c in hier.children(pl))
        assert local | inter == expected
        assert not (local & inter)
