"""Tests for the accuracy/sparsity metrics."""

import numpy as np
import pytest
from scipy import sparse

from repro.analysis import (
    AccuracyReport,
    evaluate_against_columns,
    evaluate_against_dense,
    fraction_above,
    max_relative_error,
    naive_threshold_sparsity,
    relative_error_matrix,
)
from repro.core.sparsified import SparsifiedConductance


class TestErrorMeasures:
    def test_relative_error_matrix(self):
        exact = np.array([[2.0, 1.0], [1.0, 2.0]])
        approx = np.array([[2.2, 1.0], [1.0, 1.0]])
        err = relative_error_matrix(approx, exact)
        assert err[0, 0] == pytest.approx(0.1)
        assert err[1, 1] == pytest.approx(0.5)

    def test_zero_exact_entries_use_fallback(self):
        exact = np.array([[0.0, 4.0], [4.0, 0.0]])
        approx = np.array([[1.0, 4.0], [4.0, 0.0]])
        err = relative_error_matrix(approx, exact)
        assert np.isfinite(err).all()
        assert err[0, 0] == pytest.approx(0.25)

    def test_max_and_fraction(self):
        exact = np.ones((3, 3))
        approx = np.ones((3, 3))
        approx[0, 0] = 1.5
        assert max_relative_error(approx, exact) == pytest.approx(0.5)
        assert fraction_above(approx, exact, 0.1) == pytest.approx(1 / 9)

    def test_naive_threshold_sparsity(self):
        g = np.eye(10) * 10.0
        g[0, 9] = g[9, 0] = -1.0
        g[0, 1] = g[1, 0] = -0.001
        sparsity = naive_threshold_sparsity(g, 0.10)
        assert sparsity > 1.0


class TestReports:
    def _identity_rep(self, g):
        n = g.shape[0]
        return SparsifiedConductance(sparse.eye(n).tocsr(), sparse.csr_matrix(g), n_solves=n, method="id")

    def test_exact_representation_reports_zero_error(self, rng):
        g = rng.standard_normal((8, 8))
        g = g @ g.T + 8 * np.eye(8)
        rep = self._identity_rep(g)
        report = evaluate_against_dense(rep, g)
        assert report.max_relative_error < 1e-12
        assert report.fraction_above_10pct == 0.0
        assert report.n_contacts == 8

    def test_column_evaluation_matches_dense_for_exact(self, rng):
        g = rng.standard_normal((10, 10))
        g = g @ g.T + 10 * np.eye(10)
        rep = self._identity_rep(g)
        cols = np.array([0, 3, 7])
        report = evaluate_against_columns(rep, cols, g[:, cols])
        assert report.max_relative_error < 1e-12

    def test_report_str_and_dict(self):
        report = AccuracyReport("m", 10, 2.0, 3.0, 0.01, 0.001, 5, 2.0)
        assert "m" in str(report)
        d = report.as_dict()
        assert d["sparsity_factor"] == 2.0
