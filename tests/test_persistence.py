"""Durable service state: sqlite corpus, factor artifacts, job journal.

Plus regression tests for the service-layer bugfix sweep that shipped with
persistence: health reporting, snapshot consistency, expired-id semantics,
result-store eviction accounting and the pending/running metrics split.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error

import numpy as np
import pytest

from repro.service import (
    ExtractionServer,
    ServiceError,
    UnknownJobError,
    Job,
    JobExpiredError,
    JobRequest,
    JobState,
    ResultStore,
    Scheduler,
    ServiceClient,
    ServicePersistence,
)
from repro.service.metrics import ServiceMetrics
from repro.service.result_store import DEFAULT_STORE_BYTES, default_store_bytes
from repro.substrate.factor_cache import factor_cache
from repro.substrate.parallel import SolverSpec


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def small_layout_module():
    from repro import regular_grid

    return regular_grid(n_side=4, size=128.0, fill=0.5)


@pytest.fixture(scope="module")
def small_profile_module():
    from repro import SubstrateProfile

    return SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)


@pytest.fixture(scope="module")
def bem_spec(small_layout_module, small_profile_module):
    return SolverSpec.bem(
        small_layout_module, small_profile_module, max_panels=32, rtol=1e-10
    )


@pytest.fixture(autouse=True)
def clean_factor_cache():
    """Persistence tests simulate restarts: start and end with a cold cache."""
    factor_cache().clear()
    factor_cache().set_artifact_store(None)
    yield
    factor_cache().clear()
    factor_cache().set_artifact_store(None)


def make_scheduler(state_dir, **kwargs) -> Scheduler:
    return Scheduler(n_workers=1, autostart=False, persistence=state_dir, **kwargs)


# ----------------------------------------------------- tentpole: restart corpus
def test_restart_serves_corpus_with_zero_solves(tmp_path, bem_spec):
    state = tmp_path / "state"
    with make_scheduler(state) as sched:
        job = sched.result(sched.submit(JobRequest(bem_spec, columns=(0, 3, 5))))
        sched.step()
        assert job.status == JobState.DONE
        assert sched.attributed_solves == 3
        reference = np.array(job.result)

    factor_cache().clear()  # a new process holds no RAM factors
    with make_scheduler(state) as sched:
        job = sched.result(sched.submit(JobRequest(bem_spec, columns=(0, 3, 5))))
        sched.step()
        assert job.status == JobState.DONE
        # the tentpole invariant: zero new attributed solves, exact agreement
        assert sched.attributed_solves == 0
        assert np.allclose(job.result, reference, rtol=1e-10, atol=0)
        assert sched.store.info()["disk_hits"] == 3


def test_restart_fresh_column_costs_exactly_one_solve(tmp_path, bem_spec):
    state = tmp_path / "state"
    with make_scheduler(state) as sched:
        sched.submit(JobRequest(bem_spec, columns=(0, 1)))
        sched.step()

    factor_cache().clear()
    with make_scheduler(state) as sched:
        job = sched.result(sched.submit(JobRequest(bem_spec, columns=(1, 2))))
        sched.step()
        assert job.status == JobState.DONE
        assert sched.attributed_solves == 1  # column 1 from disk, 2 solved


def test_no_state_dir_behaviour_unchanged(bem_spec):
    with Scheduler(n_workers=1, autostart=False) as sched:
        assert sched.persistence is None
        info = sched.store.info()
        assert "backend" not in info
        job = sched.result(sched.submit(JobRequest(bem_spec, columns=(0,))))
        sched.step()
        assert job.status == JobState.DONE
        assert factor_cache().artifact_store is None
        assert "persistence" not in sched.stats()


# ------------------------------------------------------- tentpole: artifacts
def test_artifact_store_warm_start_skips_rebuild(tmp_path, bem_spec):
    state = tmp_path / "state"
    with make_scheduler(state) as sched:
        sched.submit(JobRequest(bem_spec, columns=(0,)))
        sched.step()
        assert (state / "artifacts").is_dir()
        assert list((state / "artifacts").glob("*.npz"))

    factor_cache().clear()
    with make_scheduler(state):
        # a bare solver over the same spec attaches the persisted factor:
        # zero rebuilds, counter-pinned
        cache = factor_cache()
        hits_before = cache.artifact_hits
        solver = bem_spec.build()
        assert solver.prepare_direct()
        assert solver.stats.n_factor_rebuilds == 0
        assert cache.artifact_hits == hits_before + 1

    # without the artifact store the same cold build must rebuild
    factor_cache().clear()
    solver = bem_spec.build()
    assert solver.prepare_direct()
    assert solver.stats.n_factor_rebuilds == 1


def test_corrupt_artifact_is_a_miss_not_a_crash(tmp_path, bem_spec):
    state = tmp_path / "state"
    with make_scheduler(state) as sched:
        sched.submit(JobRequest(bem_spec, columns=(0,)))
        sched.step()
    for payload in (state / "artifacts").glob("*.npz"):
        payload.write_bytes(b"not an npz file")

    factor_cache().clear()
    with make_scheduler(state) as sched:
        with pytest.warns(RuntimeWarning, match="artifact"):
            job = sched.result(sched.submit(JobRequest(bem_spec, columns=(1,))))
            sched.step()
        assert job.status == JobState.DONE  # rebuilt, served anyway


# --------------------------------------------------------- tentpole: journal
def test_journal_replays_after_simulated_crash(tmp_path, bem_spec):
    state = tmp_path / "state"
    crashed = make_scheduler(state)
    job_id = crashed.submit(JobRequest(bem_spec, columns=(0, 2)))
    # simulated crash: the state dir survives, the scheduler never drains
    crashed.persistence.close()

    with make_scheduler(state) as sched:
        assert sched.metrics.jobs_replayed == 1
        assert sched.queue_depth == 1
        sched.step()
        job = sched.result(job_id)  # original id survives the crash
        assert job.status == JobState.DONE
        assert job.result.shape[1] == 2
        # replayed ids are never reissued
        assert sched.submit(JobRequest(bem_spec, columns=(1,))) != job_id
    crashed.close()


def test_graceful_close_preserves_accepted_work(tmp_path, bem_spec):
    state = tmp_path / "state"
    sched = make_scheduler(state)
    job_id = sched.submit(JobRequest(bem_spec, columns=(0,)))
    sched.close()  # never drained: close fails it locally but not on disk

    with make_scheduler(state) as sched:
        assert sched.metrics.jobs_replayed == 1
        sched.step()
        assert sched.result(job_id).status == JobState.DONE


def test_finished_jobs_do_not_replay(tmp_path, bem_spec):
    state = tmp_path / "state"
    with make_scheduler(state) as sched:
        sched.submit(JobRequest(bem_spec, columns=(0,)))
        sched.step()
    with make_scheduler(state) as sched:
        assert sched.metrics.jobs_replayed == 0
        assert sched.queue_depth == 0


def test_corrupt_journal_entry_skipped_with_warning(tmp_path, bem_spec):
    state = tmp_path / "state"
    crashed = make_scheduler(state)
    job_id = crashed.submit(JobRequest(bem_spec, columns=(0,)))
    crashed.persistence.close()
    journal = state / "journal.jsonl"
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write("this is not json\n")
        fh.write(json.dumps({"event": "accept", "job_id": "job-bad"})[:-9] + "\n")
        fh.write(json.dumps({"event": "accept", "job_id": "x", "request": "AAA"}) + "\n")

    with pytest.warns(RuntimeWarning, match="journal"):
        sched = make_scheduler(state)
    try:
        # the intact accept still replays; the torn tail lines are skipped
        assert sched.metrics.jobs_replayed == 1
        sched.step()
        assert sched.result(job_id).status == JobState.DONE
    finally:
        sched.close()
        crashed.close()


def test_sqlite_backend_roundtrip(tmp_path):
    from repro.service import SqliteResultBackend

    backend = SqliteResultBackend(tmp_path / "results.sqlite")
    fp = ("bem", "fingerprint")
    values = np.arange(5.0)
    backend.save(fp, 3, values)
    assert backend.contains(fp, 3)
    assert not backend.contains(fp, 4)
    loaded = backend.load(fp, 3)
    assert not loaded.flags.writeable
    np.testing.assert_array_equal(loaded, values)
    assert backend.load(("other",), 3) is None
    assert backend.info()["columns"] == 1
    assert backend.delete(fp) == 1
    assert backend.info()["columns"] == 0
    backend.close()


def test_result_store_write_through_and_read_through(tmp_path):
    from repro.service import SqliteResultBackend

    backend = SqliteResultBackend(tmp_path / "results.sqlite")
    store = ResultStore(max_bytes=1024, backend=backend)
    fp = ("fp",)
    store.put(fp, 0, np.arange(4.0))
    assert backend.contains(fp, 0)  # write-through

    fresh = ResultStore(max_bytes=1024, backend=backend)
    got = fresh.get(fp, 0)  # read-through on a cold LRU
    np.testing.assert_array_equal(got, np.arange(4.0))
    info = fresh.info()
    assert info["disk_hits"] == 1 and info["hits"] == 1 and info["misses"] == 0
    assert fresh.get(fp, 0) is not None  # now a RAM hit
    assert fresh.info()["disk_hits"] == 1
    assert fresh.contains(fp, 1) is False
    backend.close()


def test_persistence_object_lifecycle(tmp_path):
    with ServicePersistence(tmp_path / "state") as persistence:
        assert persistence.writable()
        info = persistence.info()
        assert set(info) == {"state_dir", "results", "artifacts", "journal"}
    # close is idempotent and releases handles
    persistence.close()


# -------------------------------------------------- bugfix: health reporting
def test_health_reports_dead_dispatcher_and_closed_scheduler(bem_spec):
    sched = Scheduler(n_workers=1, autostart=False)
    assert sched.health()["ok"]  # manual scheduler: healthy while open
    # a dispatcher thread that died must flip health, even before close()
    dead = threading.Thread(target=lambda: None)
    dead.start()
    dead.join()
    sched._thread = dead
    health = sched.health()
    assert not health["ok"] and not health["dispatcher_alive"]
    sched._thread = None
    sched.close()
    assert not sched.health()["ok"] and sched.health()["closing"]


def test_healthz_returns_503_when_unhealthy(bem_spec):
    sched = Scheduler(n_workers=1, autostart=False)
    server = ExtractionServer(scheduler=sched).start()
    try:
        client = ServiceClient(server.url)
        assert client.healthz()["ok"]
        sched.close()
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
    finally:
        server.close()
        sched.close()


def test_health_includes_state_dir_writability(tmp_path):
    with make_scheduler(tmp_path / "state") as sched:
        assert sched.health()["state_dir_writable"]


# ---------------------------------------------- bugfix: snapshot consistency
def test_snapshot_hides_result_fields_outside_terminal_states():
    job = Job(
        job_id="job-000001",
        request=None,  # snapshot only touches request.pairs via the guard
        submitted_at=time.monotonic(),
        done_event=threading.Event(),
    )
    job.request = type("R", (), {"pairs": None})()
    job.status = JobState.RUNNING
    job.result_columns = (0, 1)
    job.result = np.eye(2)  # mid-assembly values must never leak
    job.pair_values = np.array([1.0])
    snap = job.snapshot()
    assert snap["status"] == JobState.RUNNING
    assert snap["columns"] is None
    assert snap["result"] is None
    assert snap["pair_values"] is None
    job.status = JobState.DONE
    snap = job.snapshot()
    assert snap["columns"] == [0, 1]
    assert snap["result"] == [[1.0, 0.0], [0.0, 1.0]]


def test_scheduler_snapshot_is_taken_under_lock(bem_spec):
    with Scheduler(n_workers=1, autostart=False) as sched:
        job_id = sched.submit(JobRequest(bem_spec, columns=(0,)))
        assert sched.snapshot(job_id)["status"] == JobState.PENDING
        sched.step()
        snap = sched.snapshot(job_id)
        assert snap["status"] == JobState.DONE
        assert snap["columns"] == [0]
        assert snap["result"] is not None


# ------------------------------------------------- bugfix: expired-id answer
def test_expired_job_id_distinguished_from_unknown(bem_spec):
    with Scheduler(n_workers=1, autostart=False, max_jobs_retained=1) as sched:
        first = sched.submit(JobRequest(bem_spec, columns=(0,)))
        sched.submit(JobRequest(bem_spec, columns=(1,)))
        sched.step()
        with pytest.raises(JobExpiredError):
            sched.result(first)
        with pytest.raises(KeyError) as excinfo:
            sched.result("job-999999")
        assert not isinstance(excinfo.value, JobExpiredError)
        # JobExpiredError subclasses KeyError: uniform "gone" handling works
        with pytest.raises(KeyError):
            sched.result(first)


def test_http_410_for_expired_job(bem_spec):
    sched = Scheduler(n_workers=1, autostart=False, max_jobs_retained=1)
    server = ExtractionServer(scheduler=sched).start()
    try:
        client = ServiceClient(server.url)
        first = client.submit(JobRequest(bem_spec, columns=(0,)))
        client.submit(JobRequest(bem_spec, columns=(1,)))
        sched.step()
        with pytest.raises(JobExpiredError):
            client.result(first)
        with pytest.raises(UnknownJobError) as excinfo:
            client.result("job-999999")
        assert excinfo.value.status == 404
    finally:
        server.close()
        sched.close()


# --------------------------------------- bugfix: store eviction + env budget
def test_clear_counts_evictions():
    store = ResultStore(max_bytes=1 << 20)
    fp_a, fp_b = ("a",), ("b",)
    store.put(fp_a, 0, np.arange(4.0))
    store.put(fp_a, 1, np.arange(4.0))
    store.put(fp_b, 0, np.arange(4.0))
    assert store.clear(fp_a) == 2
    assert store.evictions == 2
    assert store.clear() == 1
    assert store.evictions == 3
    assert len(store) == 0


def test_default_store_bytes_validates_env(monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_STORE_BYTES", "1024")
    assert default_store_bytes() == 1024
    monkeypatch.setenv("REPRO_RESULT_STORE_BYTES", "not-a-number")
    with pytest.warns(RuntimeWarning, match="REPRO_RESULT_STORE_BYTES"):
        assert default_store_bytes() == DEFAULT_STORE_BYTES
    monkeypatch.setenv("REPRO_RESULT_STORE_BYTES", "-1")
    with pytest.warns(RuntimeWarning, match="REPRO_RESULT_STORE_BYTES"):
        assert default_store_bytes() == DEFAULT_STORE_BYTES
    monkeypatch.delenv("REPRO_RESULT_STORE_BYTES")
    assert default_store_bytes() == DEFAULT_STORE_BYTES


# ------------------------------------------- bugfix: pending/running split
def test_metrics_report_pending_and_running_separately():
    metrics = ServiceMetrics()
    for _ in range(3):
        metrics.record_submit()
    metrics.record_outcome("done")
    jobs = metrics.snapshot(running=1)["jobs"]
    assert jobs == {
        "submitted": 3,
        "done": 1,
        "failed": 0,
        "cancelled": 0,
        "timeout": 0,
        "shed": 0,
        "replayed": 0,
        "running": 1,
        "pending": 1,
    }
    # no running count given: pending falls back to the old definition
    assert metrics.snapshot()["jobs"]["pending"] == 2


def test_stats_expose_running_jobs_mid_batch(bem_spec):
    with Scheduler(n_workers=1, autostart=False) as sched:
        sched.submit(JobRequest(bem_spec, columns=(0,)))
        assert sched.stats()["jobs"]["pending"] == 1
        assert sched.stats()["jobs"]["running"] == 0
        sched.step()
        stats = sched.stats()
        assert stats["jobs"]["running"] == 0
        assert stats["jobs"]["pending"] == 0
        assert stats["jobs"]["done"] == 1
