"""Ablation — the two tuning knobs the paper calls out.

Chapter 3 fixes the vanishing-moment order at p = 2 ("We found p = 2 to be
effective") and Chapter 4 fixes the row-basis size at 6 singular values with a
1/100 relative threshold.  This ablation sweeps both knobs on the
alternating-size example and reports the sparsity/accuracy trade-off, showing
why the paper's defaults are reasonable: accuracy improves steeply up to the
chosen value and only marginally beyond it, while sparsity degrades.
"""

import pytest

from repro.core import WaveletSparsifier
from repro.core.lowrank import LowRankSparsifier
from repro.experiments import chapter4_examples
from repro.substrate import CountingSolver, DenseMatrixSolver, extract_dense
from repro.analysis import evaluate_against_dense

from common import bench_n_side, write_result


@pytest.mark.benchmark(group="ablation")
def test_ablation_moment_order_and_rank(benchmark):
    config = chapter4_examples(n_side=bench_n_side())["ch4-2"]
    layout = config.build_layout()
    hierarchy = config.build_hierarchy(layout)
    g = extract_dense(config.build_solver(layout), symmetrize=True)
    black_box = DenseMatrixSolver(g, layout)

    def run_sweep():
        rows = []
        for order in (0, 1, 2, 3):
            rep = WaveletSparsifier(hierarchy, order=order).extract(CountingSolver(black_box))
            report = evaluate_against_dense(rep, g)
            rows.append(("wavelet", f"p={order}", report))
        for max_rank in (2, 4, 6, 8):
            sp = LowRankSparsifier(hierarchy, max_rank=max_rank, seed=0)
            sp.build(CountingSolver(black_box))
            report = evaluate_against_dense(sp.to_sparsified(), g)
            rows.append(("lowrank", f"max_rank={max_rank}", report))
        return rows

    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    lines = ["Ablation — wavelet moment order p and low-rank basis size (alternating-size layout)",
             f"{'method':<10s} {'setting':<14s} {'sparsity':>9s} {'maxrel':>9s} {'>10%':>7s} {'solves':>7s}"]
    table = {}
    for method, setting, report in rows:
        table[(method, setting)] = report
        lines.append(
            f"{method:<10s} {setting:<14s} {report.sparsity_factor:>9.1f} "
            f"{100 * report.max_relative_error:>8.1f}% {100 * report.fraction_above_10pct:>6.2f}% "
            f"{report.n_solves:>7d}"
        )
    write_result("ablation_parameters", lines)

    # the paper's defaults sit at the knee of the trade-off:
    # more moments / larger rank keeps improving accuracy ...
    assert (
        table[("lowrank", "max_rank=6")].max_relative_error
        <= table[("lowrank", "max_rank=2")].max_relative_error
    )
    assert (
        table[("wavelet", "p=2")].max_relative_error
        <= table[("wavelet", "p=0")].max_relative_error + 1e-12
    )
    # ... while costing sparsity (denser kept pattern / more solves)
    assert (
        table[("lowrank", "max_rank=2")].sparsity_factor
        >= table[("lowrank", "max_rank=6")].sparsity_factor
    )
