"""Table 2.2 — solve speed: finite-difference versus eigenfunction solver.

Paper: 7.0 iterations and 3.8 s per solve for finite difference versus 6.0
iterations and 0.4 s for the eigenfunction approach (about 10x faster).  The
benchmark reproduces the comparison (absolute times differ; the eigenfunction
solver should win clearly).
"""

import pytest

from repro.experiments import get_example, run_solver_speed_table

from common import bench_n_side, write_result


@pytest.mark.benchmark(group="table-2.2")
def test_table_2_2_solver_speed(benchmark):
    config = get_example("1a", n_side=bench_n_side())
    config.fd_resolution = (64, 64)
    config.fd_planes_per_layer = (2, 5, 2)

    rows = benchmark.pedantic(
        run_solver_speed_table, args=(config,), kwargs={"n_solves": 5}, iterations=1, rounds=1
    )
    lines = ["Table 2.2 — solve speed, finite difference vs eigenfunction",
             f"{'solver':<20s} {'iterations/solve':>18s} {'time/solve':>12s}"]
    by_name = {}
    for row in rows:
        by_name[row["solver"]] = row
        lines.append(
            f"{row['solver']:<20s} {row['mean_iterations']:>18.1f} "
            f"{1e3 * row['time_per_solve_s']:>10.1f}ms"
        )
    write_result("table_2_2_solver_speed", lines)

    assert (
        by_name["eigenfunction"]["time_per_solve_s"]
        < by_name["finite difference"]["time_per_solve_s"]
    )
