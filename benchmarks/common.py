"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can reference them.  The problem scale defaults to 16 contacts per side
(256 contacts); set ``REPRO_BENCH_NSIDE=32`` to run at the paper's scale.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def bench_n_side(default: int = 16) -> int:
    """Contacts per side used by the benchmarks (env: REPRO_BENCH_NSIDE)."""
    return int(os.environ.get("REPRO_BENCH_NSIDE", default))


def write_result(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def write_json(name: str, payload: dict, root_copy: bool = False) -> Path:
    """Persist a machine-readable benchmark result as JSON.

    Writes ``benchmarks/results/<name>.json``; with ``root_copy`` the same
    document is also written to ``<repo root>/<name>.json`` so headline
    artefacts (e.g. ``BENCH_batched.json``) are discoverable without knowing
    the results layout.  Returns the results-dir path.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(text)
    if root_copy:
        (REPO_ROOT / f"{name}.json").write_text(text)
    print(text)
    return path


def format_report_row(label: str, report) -> str:
    return (
        f"{label:<34s} n={report.n_contacts:5d}  sparsity={report.sparsity_factor:7.1f}  "
        f"Qsparsity={report.q_sparsity_factor:6.1f}  "
        f"maxrel={100 * report.max_relative_error:8.2f}%  "
        f">10%={100 * report.fraction_above_10pct:6.2f}%  "
        f"solves={report.n_solves:5d}  reduction={report.solve_reduction_factor:5.1f}x"
    )
