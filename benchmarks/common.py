"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can reference them.  The problem scale defaults to 16 contacts per side
(256 contacts); set ``REPRO_BENCH_NSIDE=32`` to run at the paper's scale.

The perf benchmarks (batched extraction, dispatch, parallel extraction) share
one workflow, centralised here: reference runs (no ``REPRO_BENCH_NSIDE``)
sweep the paper pair {16, 32} and write the tracked ``BENCH_*.json`` +
``benchmarks/results/*.txt`` artefacts (JSON also copied to the repo root);
env-overridden smoke runs write gitignored ``*_smoke`` siblings so they can
never clobber a committed reference record.  Every perf-benchmark JSON record
also carries the process-wide factor-cache hit/miss counters.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: the paper's reference scales swept when no env override is given
REFERENCE_SIZES = (16, 32)


def ensure_repro_importable() -> None:
    """Put ``<repo>/src`` on ``sys.path`` (standalone benchmark scripts)."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def bench_n_side(default: int = 16) -> int:
    """Contacts per side used by the benchmarks (env: REPRO_BENCH_NSIDE)."""
    return int(os.environ.get("REPRO_BENCH_NSIDE", default))


def default_sizes(reference: tuple[int, ...] = REFERENCE_SIZES) -> list[int]:
    """n_side values to benchmark: env override or the paper pair {16, 32}."""
    env = os.environ.get("REPRO_BENCH_NSIDE")
    if env:
        return [int(env)]
    return list(reference)


def bench_workers(default: tuple[int, ...] = (2, 4)) -> list[int]:
    """Worker counts for the parallel benchmarks (env: REPRO_BENCH_WORKERS).

    The env var takes a comma-separated list (``REPRO_BENCH_WORKERS=2`` or
    ``2,4``), as used by the CI smoke step.
    """
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env:
        return [int(w) for w in env.split(",") if w.strip()]
    return list(default)


def is_reference_run() -> bool:
    """True when this run may touch the tracked reference artefacts."""
    return "REPRO_BENCH_NSIDE" not in os.environ


def factor_cache_record() -> dict:
    """Process-wide factor-cache counters for inclusion in JSON records."""
    from repro.substrate.factor_cache import factor_cache_info

    return factor_cache_info()


def emit_benchmark(json_base: str, payload: dict, txt_base: str, lines: list[str]) -> None:
    """Write one perf benchmark's JSON + text artefacts.

    Reference runs write ``<json_base>.json`` (results dir + repo root) and
    ``<txt_base>.txt``; smoke runs write the gitignored ``*_smoke`` siblings.
    The factor-cache hit/miss counters are stamped into the payload.
    """
    payload.setdefault("factor_cache", factor_cache_record())
    reference = is_reference_run()
    suffix = "" if reference else "_smoke"
    write_json(json_base + suffix, payload, root_copy=reference)
    write_result(txt_base + suffix, lines)


def gate_main(results: list[dict], check) -> None:
    """Standalone-script exit protocol: collect gate failures, exit non-zero."""
    failures: list[str] = []
    for result in results:
        failures.extend(check(result))
    if failures:
        raise SystemExit("\n".join(failures))


def write_result(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def write_json(name: str, payload: dict, root_copy: bool = False) -> Path:
    """Persist a machine-readable benchmark result as JSON.

    Writes ``benchmarks/results/<name>.json``; with ``root_copy`` the same
    document is also written to ``<repo root>/<name>.json`` so headline
    artefacts (e.g. ``BENCH_batched.json``) are discoverable without knowing
    the results layout.  Returns the results-dir path.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(text)
    if root_copy:
        (REPO_ROOT / f"{name}.json").write_text(text)
    print(text)
    return path


def format_report_row(label: str, report) -> str:
    return (
        f"{label:<34s} n={report.n_contacts:5d}  sparsity={report.sparsity_factor:7.1f}  "
        f"Qsparsity={report.q_sparsity_factor:6.1f}  "
        f"maxrel={100 * report.max_relative_error:8.2f}%  "
        f">10%={100 * report.fraction_above_10pct:6.2f}%  "
        f"solves={report.n_solves:5d}  reduction={report.solve_reduction_factor:5.1f}x"
    )
