"""Figures 4-9 / 4-11 — sparsity structure of the low-rank Gwt.

The paper shows the thresholded low-rank representation of the mixed-shape
example (nnz = 32886 for ~800 contacts) and of the 10240-contact example
(nnz = 814808).  The benchmark reports the nonzero counts and a text rendering
of the pattern for the mixed-shape example.
"""

import pytest

from repro.analysis.spy import spy_statistics, spy_text
from repro.core.lowrank import LowRankSparsifier
from repro.experiments import chapter4_examples
from repro.substrate import CountingSolver, DenseMatrixSolver, extract_dense

from common import bench_n_side, write_result


@pytest.mark.benchmark(group="fig-4.9")
def test_fig_4_9_lowrank_spy(benchmark):
    config = chapter4_examples(n_side=bench_n_side())["ch4-3"]
    layout = config.build_layout()
    hierarchy = config.build_hierarchy(layout)
    solver = config.build_solver(layout)
    g = extract_dense(solver, symmetrize=True)

    def extract():
        sp = LowRankSparsifier(hierarchy, max_rank=6)
        sp.build(CountingSolver(DenseMatrixSolver(g, layout)))
        rep = sp.to_sparsified()
        return rep, rep.threshold_to_sparsity(rep.sparsity_factor() * 6)

    rep, rep_t = benchmark.pedantic(extract, iterations=1, rounds=1)
    stats, stats_t = spy_statistics(rep.gw), spy_statistics(rep_t.gw)
    lines = [
        "Figures 4-9 / 4-11 — low-rank Gw / Gwt structure (mixed-shape example)",
        f"Gw : nnz={int(stats['nnz'])}  sparsity={stats['sparsity_factor']:.1f}x",
        f"Gwt: nnz={int(stats_t['nnz'])}  sparsity={stats_t['sparsity_factor']:.1f}x",
        "", "Gwt pattern:", spy_text(rep_t.gw, width=48),
    ]
    write_result("fig_4_9_spy", lines)
    assert stats_t["nnz"] < stats["nnz"]
