"""Table 2.1 — preconditioner effectiveness for the finite-difference solver.

Paper: average PCG iterations per solve of 22.2 (pure Dirichlet), 7.9 (pure
Neumann) and 6.8 (area-weighted) for a regular contact layout; incomplete
Cholesky needs hundreds of iterations.  The benchmark reports the same
quantities for this implementation.
"""

import pytest

from repro.experiments import get_example, run_preconditioner_table

from common import bench_n_side, write_result

PRECONDITIONERS = (
    "fast_poisson_dirichlet",
    "fast_poisson_neumann",
    "fast_poisson_area",
    "ic",
    "jacobi",
)


@pytest.mark.benchmark(group="table-2.1")
def test_table_2_1_preconditioner_effectiveness(benchmark):
    config = get_example("1b", n_side=bench_n_side())
    config.fd_resolution = (64, 64)
    config.fd_planes_per_layer = (2, 5, 2)

    rows = benchmark.pedantic(
        run_preconditioner_table,
        args=(config,),
        kwargs={"preconditioners": PRECONDITIONERS, "n_solves": 3},
        iterations=1,
        rounds=1,
    )
    lines = ["Table 2.1 — preconditioner effectiveness (FD solver, regular layout)",
             f"{'preconditioner':<26s} {'iterations/solve':>18s} {'time/solve':>12s}"]
    by_name = {}
    for row in rows:
        by_name[row["preconditioner"]] = row["mean_iterations"]
        lines.append(
            f"{row['preconditioner']:<26s} {row['mean_iterations']:>18.1f} "
            f"{1e3 * row['time_per_solve_s']:>10.1f}ms"
        )
    write_result("table_2_1_preconditioners", lines)

    # shape assertions: the fast-solver preconditioners beat IC and Jacobi,
    # as in the paper's discussion of Section 2.2.2
    fast = min(by_name["fast_poisson_dirichlet"], by_name["fast_poisson_neumann"],
               by_name["fast_poisson_area"])
    assert fast < by_name["ic"]
    assert fast < by_name["jacobi"]
