"""Figure 4-3 — singular values of self versus well-separated interactions.

Paper: the self-interaction block of a square of contacts has slowly decaying
singular values while the block coupling it to a well-separated square decays
extremely fast (this is what makes the low-rank method work).  The benchmark
computes both spectra on the two-cluster layout of Figure 4-2.
"""

import numpy as np
import pytest

from repro.experiments import singular_value_decay_experiment
from repro.geometry import two_square_clusters
from repro.substrate import SubstrateProfile, extract_dense
from repro.substrate.bem import EigenfunctionSolver

from common import write_result


@pytest.mark.benchmark(group="fig-4.3")
def test_fig_4_3_singular_value_decay(benchmark):
    layout = two_square_clusters(size=64.0, n_per_cluster=25, separation_cells=3)
    profile = SubstrateProfile.two_layer_example(size=64.0, resistive_bottom=True)
    solver = EigenfunctionSolver(layout, profile, max_panels=128)
    g = extract_dense(solver, symmetrize=True)
    source = np.arange(25)
    destination = np.arange(25, 50)

    spectra = benchmark.pedantic(
        singular_value_decay_experiment,
        args=(layout, g, source, destination),
        iterations=1,
        rounds=1,
    )
    s_self = spectra["self"] / spectra["self"][0]
    s_far = spectra["separated"] / spectra["separated"][0]
    lines = ["Figure 4-3 — normalised singular values (self vs well-separated block)",
             f"{'k':>3s} {'self':>12s} {'separated':>12s}"]
    for k in range(min(12, s_self.size)):
        lines.append(f"{k:>3d} {s_self[k]:>12.3e} {s_far[k]:>12.3e}")
    write_result("fig_4_3_singular_values", lines)

    # the separated interaction is numerically low-rank, the self block is not
    assert s_far[5] < 1e-3
    assert s_self[5] > 1e-3
