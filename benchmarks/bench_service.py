"""Extraction service: coalesced scheduling versus one-solver-per-request.

Eight concurrent clients request overlapping column sets of the same
substrate's ``G``.  The baseline arm is the pre-service status quo — every
client builds its own solver (factor cache disabled, emulating independent
processes) and extracts its columns in isolation.  The service arm submits
the same workload as :class:`~repro.service.jobs.JobRequest` jobs to one
:class:`~repro.service.scheduler.Scheduler`, which coalesces them over the
shared substrate fingerprint, solves only the union of fresh columns on a
persistent warm engine, and serves overlaps from the result store.  A
2-client round trip through the real HTTP server checks the wire path.  It
emits a machine-readable ``BENCH_service.json`` (results dir + repo root).

Hard gates (every scale, including the CI smoke run):

* every client's service result agrees with its isolated per-request
  extraction to 1e-10, over HTTP too;
* solve attribution is identical: the service charges exactly one black-box
  solve per *distinct* union column (``attributed_solves ==
  columns_solved == |union|``), each baseline client exactly one per
  requested column;
* a repeated query is served entirely from the ``ResultStore`` — **zero**
  new solves;
* the HTTP arm solves each distinct column at most once across its clients
  (cross-request amortisation on the wire path).

Speed gate (>= 2 CPUs and a measurably expensive baseline only — smoke
scales are correctness-only): the service serves the 8-client workload at
>= 3x the one-solver-per-request throughput.

Run directly (``REPRO_BENCH_NSIDE=8`` for a CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_service.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
)

ensure_repro_importable()

from repro.experiments import run_service_experiment

#: agreement bound: the service may never change the answer
AGREEMENT_RTOL = 1e-10
#: required throughput multiple over one-solver-per-request at 8 clients
SPEEDUP_GATE = 3.0
#: clients in the concurrent in-process arm
N_CLIENTS = 8
#: the speed gate only fires once the baseline is genuinely expensive —
#: below this the measurement is dominated by the coalesce window and fixed
#: scheduling overhead, not solver work (smoke runs stay correctness-only,
#: mirroring bench_parallel's measurable-serial exemption)
MIN_GATED_BASELINE_S = 0.5


def run(sizes: list[int]) -> list[dict]:
    results = [run_service_experiment(n_side=s, n_clients=N_CLIENTS) for s in sizes]
    payload = {
        "benchmark": "service",
        "description": "extraction service (coalesced scheduler + result store + "
        "persistent warm engines) vs one-solver-per-request at "
        f"{N_CLIENTS} concurrent clients on a shared substrate, plus "
        "a 2-client HTTP round trip",
        "n_clients": N_CLIENTS,
        "cpu_count": int(os.cpu_count() or 1),
        "results": results,
    }
    lines = [
        "Extraction service: coalesced vs one-solver-per-request",
        f"{'n_side':>6s} {'clients':>7s} {'union':>5s} {'baseline':>9s} "
        f"{'service':>9s} {'speedup':>7s} {'solved':>6s} {'store':>5s} "
        f"{'max rel diff':>13s}",
    ]
    for r in results:
        lines.append(
            f"{r['n_side']:>6d} {r['n_clients']:>7d} {r['union_columns']:>5d} "
            f"{r['baseline_s']:>8.3f}s {r['service_s']:>8.3f}s "
            f"{r['throughput_speedup']:>6.2f}x {r['columns_solved']:>6d} "
            f"{r['columns_from_store']:>5d} {r['max_abs_diff_rel']:>12.2e}"
        )
        http = r.get("http")
        if http:
            lines.append(
                f"{r['n_side']:>6d}    http clients={http['clients']} "
                f"union={http['union_columns']} solved={http['columns_solved']} "
                f"batches={http['batches']} diff={http['max_abs_diff_rel']:.2e}"
            )
    emit_benchmark("BENCH_service", payload, "bench_service", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one size's record; returns failure messages."""
    failures = []
    where = f"at n_side={result['n_side']}"
    if any(status != "done" for status in result["service_status"]):
        failures.append(f"service jobs ended {result['service_status']} {where}")
    if result["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"service results disagree with isolated per-request extraction "
            f"({result['max_abs_diff_rel']:.2e} rel) {where}"
        )
    # attribution: exactly one black-box solve per distinct union column on
    # the service side, one per requested column per isolated client
    if result["columns_solved"] != result["union_columns"]:
        failures.append(
            f"service solved {result['columns_solved']} columns for a "
            f"{result['union_columns']}-column union {where}"
        )
    if result["attributed_solves"] != result["columns_solved"]:
        failures.append(
            f"attribution drift: {result['attributed_solves']} attributed vs "
            f"{result['columns_solved']} solved columns {where}"
        )
    if any(c != result["columns_per_client"] for c in result["baseline_counts"]):
        failures.append(
            f"baseline attribution drift: {result['baseline_counts']} vs "
            f"{result['columns_per_client']} columns per client {where}"
        )
    repeat = result["repeat"]
    if repeat["status"] != "done" or repeat["new_solves"] != 0:
        failures.append(
            f"repeated query was not served from the result store "
            f"(status={repeat['status']}, {repeat['new_solves']} new solves) {where}"
        )
    if repeat["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"repeated query disagrees ({repeat['max_abs_diff_rel']:.2e} rel) {where}"
        )
    http = result.get("http")
    if http is not None:
        if not http["healthz_ok"]:
            failures.append(f"healthz probe failed {where}")
        if http["max_abs_diff_rel"] > AGREEMENT_RTOL:
            failures.append(
                f"HTTP results disagree ({http['max_abs_diff_rel']:.2e} rel) {where}"
            )
        if http["columns_solved"] > http["union_columns"]:
            failures.append(
                f"HTTP arm re-solved shared columns ({http['columns_solved']} "
                f"solves for a {http['union_columns']}-column union) {where}"
            )
    # the speed gate needs real parallel hardware (a 1-CPU container measures
    # scheduling overhead, not throughput) and a baseline expensive enough
    # that fixed overheads cannot dominate the ratio
    if (
        result["cpu_count"] >= 2
        and result["baseline_s"] >= MIN_GATED_BASELINE_S
        and result["throughput_speedup"] < SPEEDUP_GATE
    ):
        failures.append(
            f"service throughput {result['throughput_speedup']:.2f}x is below "
            f"the {SPEEDUP_GATE:.0f}x gate at {result['n_clients']} clients {where}"
        )
    return failures


def test_bench_service():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
