"""Process-parallel extraction versus the serial adaptive path.

For each backend (eigenfunction / finite-difference) and backplane (grounded /
floating) this benchmark times full dense extraction serially and through a
``ParallelExtractor`` with each configured worker count
(``REPRO_BENCH_WORKERS``, default ``2,4``), and measures the cross-solver
factor cache: cold first-factor time versus the warm load a second solver
pays over the same ``(layout, profile, grid)``.  It emits a machine-readable
``BENCH_parallel.json`` (results dir + repo root) so the scaling behaviour is
tracked across PRs; every record carries the host's CPU count and the
process-wide factor-cache hit/miss counters.

Gates: parallel extraction must match serial to 1e-10 with identical
attributed solve counts (hard everywhere); on a multi-core host the parallel
path must never be slower than 0.9x serial (the CI smoke gate — the timed
region isolates solves, with worker factor warm-up during untimed pool
start-up); and at reference scale the warm factor load must be >= 10x faster
than the cold build.

Run directly (``REPRO_BENCH_NSIDE=8 REPRO_BENCH_WORKERS=2`` for a CI smoke
run)::

    PYTHONPATH=src python benchmarks/bench_parallel.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    bench_workers,
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
    is_reference_run,
)

ensure_repro_importable()

from repro.experiments import run_parallel_extraction_experiment

#: agreement bound: sharding must not change the extracted G
AGREEMENT_RTOL = 1e-10
#: speed gate for runs that can win (workers <= cpu cores): parallel never
#: slower than 0.9x serial
MIN_SPEEDUP_MULTICORE = 0.9
#: collapse guard for oversubscribed runs (workers > cpu cores, e.g. the
#: whole sweep on a single-core container): sharding cannot win there and
#: only documents IPC/contention overhead, but must not fall off a cliff
MIN_SPEEDUP_OVERSUBSCRIBED = 0.3
#: speed gates only apply when the serial region is long enough to measure:
#: below this, the fixed per-block IPC cost (a few ms) dominates any signal
#: (same rationale as the other benches' "smoke timings are noise" carve-out)
MIN_GATED_SERIAL_S = 0.05
#: reference-scale gate on the cross-solver factor cache
MIN_FACTOR_WARM_SPEEDUP = 10.0


def run(sizes: list[int]) -> list[dict]:
    workers = tuple(bench_workers())
    results: list[dict] = []
    for s in sizes:
        results.extend(
            run_parallel_extraction_experiment(
                n_side=s,
                workers=workers,
                repeats=3 if s <= 16 else 2,
            )
        )
    payload = {
        "benchmark": "parallel_extraction",
        "description": "serial adaptive dense extraction vs process-parallel "
        "sharded extraction (ParallelExtractor), plus cold/warm "
        "cross-solver factor-cache timings; eigenfunction and "
        "finite-difference backends, grounded and floating "
        "backplanes",
        "workers": list(workers),
        "cpu_count": int(os.cpu_count() or 1),
        "results": results,
    }
    lines = [
        "Process-parallel extraction vs serial adaptive path",
        f"{'n_side':>6s} {'backend':>7s} {'backplane':>9s} {'serial':>8s} "
        f"{'workers':>7s} {'parallel':>9s} {'speedup':>8s} {'coldF':>8s} "
        f"{'warmF':>9s} {'max rel diff':>13s}",
    ]
    for r in results:
        for p in r["parallel"]:
            lines.append(
                f"{r['n_side']:>6d} {r['backend']:>7s} {r['backplane']:>9s} "
                f"{r['serial_s']:>7.2f}s {p['workers']:>7d} "
                f"{p['parallel_s']:>8.2f}s {p['speedup_vs_serial']:>7.2f}x "
                f"{r['cold_factor_s']:>7.3f}s {r['warm_factor_s']:>8.5f}s "
                f"{p['max_abs_diff_rel']:>12.2e}"
            )
    emit_benchmark("BENCH_parallel", payload, "bench_parallel", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one (backend, backplane, size) record; returns failure messages."""
    failures = []
    where = (
        f"{result['backend']}/{result['backplane']} at n_side={result['n_side']}"
    )
    cpu_count = result.get("cpu_count", 1)
    for p in result["parallel"]:
        min_speedup = (
            MIN_SPEEDUP_MULTICORE
            if p["workers"] <= cpu_count
            else MIN_SPEEDUP_OVERSUBSCRIBED
        )
        if p["max_abs_diff_rel"] > AGREEMENT_RTOL:
            failures.append(
                f"parallel extraction disagrees with serial "
                f"({p['max_abs_diff_rel']:.2e} rel, {p['workers']} workers) {where}"
            )
        if p["parallel_solves"] != result["serial_solves"]:
            failures.append(
                f"attribution drift: parallel {p['parallel_solves']} vs serial "
                f"{result['serial_solves']} solves ({p['workers']} workers) {where}"
            )
        if p["merged_stats"]["n_solves"] != result["serial_solves"]:
            failures.append(
                f"merged worker stats report {p['merged_stats']['n_solves']} "
                f"solves, expected {result['serial_solves']} {where}"
            )
        if (
            result["serial_s"] >= MIN_GATED_SERIAL_S
            and p["speedup_vs_serial"] < min_speedup
        ):
            failures.append(
                f"parallel path only {p['speedup_vs_serial']:.2f}x serial "
                f"({p['workers']} workers, floor {min_speedup}x) {where}"
            )
    # timing the warm load only means anything at reference scale; smoke-scale
    # factors are sub-millisecond and all noise
    if (
        is_reference_run()
        and result["factorable"]
        and result["factor_warm_speedup"] < MIN_FACTOR_WARM_SPEEDUP
    ):
        failures.append(
            f"warm factor load only {result['factor_warm_speedup']:.1f}x faster "
            f"than cold build (need >= {MIN_FACTOR_WARM_SPEEDUP}x) {where}"
        )
    return failures


def test_bench_parallel():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
