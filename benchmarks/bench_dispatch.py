"""Adaptive solver-dispatch versus the two fixed solve engines.

For each backplane type this benchmark times full dense extraction with the
dispatch policy pinned to the iterative engine (stacked-RHS CG / block
MINRES), pinned to the direct engine (cached dense Cholesky / bordered
Schur-complement factorisation), and left adaptive, then emits a
machine-readable ``BENCH_dispatch.json`` (results dir + repo root) so the
crossover behaviour is tracked across PRs.

Gates: the three paths must extract the same ``G``, and the adaptive policy
must never be slower than the **worse** of the two fixed paths (it routes to
one of them, so only scheduler noise can violate this — a generous margin
absorbs that).  At the reference scales the adaptive policy must match or
beat both fixed paths at ``n_side=16`` and beat pure-iterative by >= 1.3x at
``n_side=32``.

Run directly (``REPRO_BENCH_NSIDE=4`` for a CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_dispatch.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import default_sizes, emit_benchmark, ensure_repro_importable, gate_main

ensure_repro_importable()

from repro.experiments import run_dispatch_experiment

#: generous allowance for shared-box scheduler noise on the "adaptive is never
#: slower than the worse fixed path" gate
NOISE_MARGIN = 1.25


def run(sizes: list[int]) -> list[dict]:
    results = [
        # the floating MINRES path at n_side=32 is minutes-scale; two repeats
        # keep the reference run tractable while still taking a minimum
        run_dispatch_experiment(n_side=s, repeats=3 if s <= 16 else 2)
        for s in sizes
    ]
    payload = {
        "benchmark": "dispatch",
        "description": "adaptive direct-vs-iterative dispatch vs fixed paths, "
        "dense extraction, eigenfunction solver, grounded and "
        "floating backplanes",
        "results": results,
    }
    lines = [
        "Adaptive dispatch vs fixed direct/iterative paths (dense extraction)",
        f"{'n_side':>6s} {'backplane':>9s} {'iterative':>10s} {'direct':>8s} "
        f"{'adaptive':>9s} {'path':>9s} {'vs iter':>8s} {'max rel diff':>13s}",
    ]
    for r in results:
        for backplane in ("grounded", "floating"):
            b = r[backplane]
            lines.append(
                f"{r['n_side']:>6d} {backplane:>9s} {b['iterative_s']:>9.2f}s "
                f"{b['direct_s']:>7.2f}s {b['adaptive_s']:>8.2f}s "
                f"{b['adaptive_path']:>9s} "
                f"{b['speedup_adaptive_vs_iterative']:>7.1f}x "
                f"{b['max_abs_diff_rel']:>12.2e}"
            )
    emit_benchmark("BENCH_dispatch", payload, "bench_dispatch", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one size's result; returns a list of failure messages."""
    failures = []
    n_side = result["n_side"]
    for backplane in ("grounded", "floating"):
        b = result[backplane]
        if b["max_abs_diff_rel"] >= 1e-6:
            failures.append(
                f"{backplane} paths disagree ({b['max_abs_diff_rel']:.2e} rel) "
                f"at n_side={n_side}"
            )
        worse_fixed = max(b["iterative_s"], b["direct_s"])
        if b["adaptive_s"] > NOISE_MARGIN * worse_fixed:
            failures.append(
                f"adaptive ({b['adaptive_s']:.3f}s) slower than the worse fixed "
                f"path ({worse_fixed:.3f}s) for {backplane} at n_side={n_side}"
            )
        # reference scales only: tiny smoke grids are plumbing checks, their
        # sub-millisecond timings are all noise
        if n_side == 16:
            best_fixed = min(b["iterative_s"], b["direct_s"])
            if b["adaptive_s"] > 1.15 * best_fixed:
                failures.append(
                    f"adaptive ({b['adaptive_s']:.3f}s) does not match the best "
                    f"fixed path ({best_fixed:.3f}s) for {backplane} at n_side=16"
                )
        if n_side == 32 and b["speedup_adaptive_vs_iterative"] < 1.3:
            failures.append(
                f"adaptive only {b['speedup_adaptive_vs_iterative']:.2f}x over "
                f"pure-iterative for {backplane} at n_side=32 (need >= 1.3x)"
            )
    return failures


def test_bench_dispatch():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
