"""Table 4.2 — thresholded comparison of the low-rank and wavelet methods.

Paper: after thresholding the low-rank representation ~6x, only 0.4-1.4% of
entries are off by more than 10%; the wavelet representation thresholded to the
*same sparsity* has 0.8% (regular grid) but 89-94% (size-varying layouts) of
entries off by more than 10%.  The benchmark regenerates the comparison.
"""

import pytest

from repro.experiments import chapter4_examples, run_method_comparison

from common import bench_n_side, format_report_row, write_result

EXAMPLES = ("ch4-1", "ch4-2", "ch4-3")


@pytest.mark.benchmark(group="table-4.2")
def test_table_4_2_thresholded_comparison(benchmark):
    configs = chapter4_examples(n_side=bench_n_side())

    def run_all():
        return {name: run_method_comparison(configs[name]) for name in EXAMPLES}

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    lines = ["Table 4.2 — thresholded Gwt comparison (low-rank vs wavelet at equal sparsity)"]
    for name in EXAMPLES:
        lines.append(format_report_row(f"example {name} lowrank (thr)", results[name]["lowrank"].thresholded))
        lines.append(
            format_report_row(
                f"example {name} wavelet @ same sparsity",
                results[name]["wavelet@lowrank-sparsity"].thresholded,
            )
        )
    write_result("table_4_2_thresholded", lines)

    # shape: at matched sparsity the wavelet method has (much) more bad entries
    # on the size-varying layouts
    for name in ("ch4-2", "ch4-3"):
        lr = results[name]["lowrank"].thresholded
        wv = results[name]["wavelet@lowrank-sparsity"].thresholded
        assert lr.fraction_above_10pct < wv.fraction_above_10pct
