"""Batched multi-RHS extraction versus sequential dense extraction.

The batched extraction engine submits all ``n`` unit-vector right-hand sides
through ``SubstrateSolver.solve_many`` (one stacked-RHS Krylov iteration per
chunk) instead of re-driving the DCT pipeline once per contact.  This
benchmark times both paths on the paper's regular-grid example and emits a
machine-readable ``BENCH_batched.json`` (results dir + repo root) so the
speedup is tracked across PRs.

Run directly (``REPRO_BENCH_NSIDE=4`` for a CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_batched_extraction.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import default_sizes, emit_benchmark, ensure_repro_importable

ensure_repro_importable()

from repro.experiments import run_batched_extraction_experiment


def run(sizes: list[int]) -> list[dict]:
    results = [run_batched_extraction_experiment(n_side=s) for s in sizes]
    payload = {
        "benchmark": "batched_extraction",
        "description": "sequential (one solve_currents per contact) vs "
        "batched (solve_many) dense conductance extraction, "
        "eigenfunction solver",
        "results": results,
    }
    lines = [
        "Batched multi-RHS extraction vs sequential dense extraction",
        f"{'n_side':>6s} {'contacts':>8s} {'panels':>6s} {'sequential':>11s} "
        f"{'batched':>9s} {'speedup':>8s} {'max rel diff':>13s}",
    ]
    for r in results:
        lines.append(
            f"{r['n_side']:>6d} {r['n_contacts']:>8d} {r['panel_grid']:>6d} "
            f"{r['sequential_s']:>10.2f}s {r['batched_s']:>8.2f}s "
            f"{r['speedup']:>7.1f}x {r['max_abs_diff_rel']:>12.2e}"
        )
    emit_benchmark("BENCH_batched", payload, "bench_batched_extraction", lines)
    return results


def test_bench_batched_extraction():
    # the two paths must extract the same conductance matrix, and the batched
    # engine must pay off at the reference scale; other sizes (tiny smoke
    # grids, the memory-bound n_side=32) are exercised for plumbing and
    # correctness only
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


def check(result: dict) -> list[str]:
    """Gate one size's result; returns a list of failure messages."""
    failures = []
    if result["max_abs_diff_rel"] >= 1e-6:
        failures.append(
            f"batched extraction disagrees with sequential "
            f"({result['max_abs_diff_rel']:.2e} rel) at n_side={result['n_side']}"
        )
    if result["n_side"] == 16 and result["speedup"] < 3.0:
        failures.append(
            f"batched extraction speedup {result['speedup']:.2f}x < 3x "
            f"at n_side={result['n_side']}"
        )
    return failures


if __name__ == "__main__":
    from common import gate_main

    gate_main(run(default_sizes()), check)
