"""Durable service state: cold start versus warm restart of the corpus.

The extraction service's amortised state — solved ``G`` columns, factor
payloads, accepted jobs — used to die with the process.  This benchmark
runs the same overlapping multi-client workload twice against one state
directory: a **cold** arm on an empty dir (full factorisation, one
attributed solve per union column, everything written through to sqlite +
the factor artifact store + the job journal) and a **warm** arm after a
simulated process restart (the process-wide factor cache is wiped), which
must re-serve the workload entirely from the durable corpus.  A crash-
replay arm checks that a journaled-but-unserved job survives a kill and is
replayed under its original id.  It emits a machine-readable
``BENCH_durable.json`` (results dir + repo root).

Hard gates (every scale, including the CI smoke run):

* both arms complete every job, and the warm results agree with the cold
  ones to 1e-10;
* cold attribution is exact (one solve per distinct union column) and the
  warm restart charges **zero** new solves for the replayed corpus;
* a *fresh* (never-solved) column after restart costs exactly one solve,
  with the factor **attached from the artifact store** — counter-pinned:
  a bare solver over the same spec reports zero factor rebuilds while the
  artifact store is wired and >= 1 once it is not;
* the crash-replay arm replays >= 1 journaled job and completes it from
  the warm corpus with zero solves at 1e-10 agreement.

Speed gate (measurably expensive cold arm only — smoke scales are
correctness-only): the warm restart serves the workload at >= 2x the cold
throughput (in practice it is orders of magnitude faster; the loose bound
keeps the gate robust to scheduling noise).

Run directly (``REPRO_BENCH_NSIDE=8`` for a CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_durable.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
)

ensure_repro_importable()

from repro.experiments import run_durable_experiment

#: agreement bound: persistence may never change the answer
AGREEMENT_RTOL = 1e-10
#: required warm-restart throughput multiple over the cold start
SPEEDUP_GATE = 2.0
#: clients in the concurrent workload (both arms)
N_CLIENTS = 4
#: the speed gate only fires once the cold arm is genuinely expensive —
#: below this the measurement is dominated by fixed scheduling overhead,
#: not the factorisation + solves the corpus saves (smoke runs stay
#: correctness-only, mirroring bench_service's exemption)
MIN_GATED_COLD_S = 0.5


def run(sizes: list[int]) -> list[dict]:
    results = [run_durable_experiment(n_side=s, n_clients=N_CLIENTS) for s in sizes]
    payload = {
        "benchmark": "durable",
        "description": "cold start vs warm restart of a persistent extraction "
        f"service ({N_CLIENTS} concurrent clients on a shared substrate): "
        "sqlite result corpus, content-addressed factor artifacts, "
        "crash-safe job journal",
        "n_clients": N_CLIENTS,
        "cpu_count": int(os.cpu_count() or 1),
        "results": results,
    }
    lines = [
        "Durable service state: cold start vs warm restart",
        f"{'n_side':>6s} {'union':>5s} {'cold':>9s} {'warm':>9s} {'speedup':>7s} "
        f"{'cold slv':>8s} {'warm slv':>8s} {'disk':>5s} {'max rel diff':>13s}",
    ]
    for r in results:
        lines.append(
            f"{r['n_side']:>6d} {r['union_columns']:>5d} {r['cold_s']:>8.3f}s "
            f"{r['warm_s']:>8.3f}s {r['warm_speedup']:>6.2f}x "
            f"{r['cold_attributed_solves']:>8d} {r['warm_attributed_solves']:>8d} "
            f"{r['warm_disk_hits']:>5d} {r['warm_max_abs_diff_rel']:>12.2e}"
        )
        fresh = r["fresh_column"]
        replay = r["replay"]
        lines.append(
            f"{r['n_side']:>6d}    fresh col: {fresh['new_solves']} solve "
            f"({fresh['artifact_hits']} artifact hit) | probes: "
            f"warm {r['warm_probe_rebuilds']} / cold {r['cold_probe_rebuilds']} "
            f"rebuilds | replay: {replay['journal_replayed']} job "
            f"({replay['new_solves']} solves, diff={replay['max_abs_diff_rel']:.2e})"
        )
    emit_benchmark("BENCH_durable", payload, "bench_durable", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one size's record; returns failure messages."""
    failures = []
    where = f"at n_side={result['n_side']}"
    for arm in ("cold", "warm"):
        if any(status != "done" for status in result[f"{arm}_status"]):
            failures.append(f"{arm} jobs ended {result[f'{arm}_status']} {where}")
    # cold attribution is exact: one black-box solve per distinct union column
    if result["cold_attributed_solves"] != result["union_columns"]:
        failures.append(
            f"cold start solved {result['cold_attributed_solves']} columns for "
            f"a {result['union_columns']}-column union {where}"
        )
    # the tentpole gate: a restarted service re-serves the corpus for free
    if result["warm_attributed_solves"] != 0:
        failures.append(
            f"warm restart charged {result['warm_attributed_solves']} new "
            f"solves for the replayed corpus {where}"
        )
    if result["warm_max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"warm results disagree with the cold start "
            f"({result['warm_max_abs_diff_rel']:.2e} rel) {where}"
        )
    if result["warm_disk_hits"] < result["union_columns"]:
        failures.append(
            f"only {result['warm_disk_hits']} of {result['union_columns']} warm "
            f"columns came from the persistent corpus {where}"
        )
    # the corpus cannot fake a fresh column — and its factor must come from
    # the artifact store, not a rebuild
    fresh = result["fresh_column"]
    if fresh["status"] != "done" or fresh["new_solves"] != 1:
        failures.append(
            f"fresh column after restart cost {fresh['new_solves']} solves "
            f"(status={fresh['status']}), expected exactly 1 {where}"
        )
    if fresh["artifact_hits"] < 1:
        failures.append(
            f"fresh column after restart never consulted the factor artifact "
            f"store {where}"
        )
    if result["warm_probe_rebuilds"] != 0:
        failures.append(
            f"warm factor probe rebuilt {result['warm_probe_rebuilds']} factors "
            f"despite the artifact store {where}"
        )
    if result["cold_probe_rebuilds"] < 1:
        failures.append(
            f"cold factor probe reported {result['cold_probe_rebuilds']} rebuilds "
            f"— the probe is not measuring the rebuild path {where}"
        )
    replay = result["replay"]
    if replay["journal_replayed"] < 1 or replay["status"] != "done":
        failures.append(
            f"crash replay did not complete (replayed="
            f"{replay['journal_replayed']}, status={replay['status']}) {where}"
        )
    if replay["new_solves"] != 0:
        failures.append(
            f"crash replay charged {replay['new_solves']} solves against a "
            f"warm corpus {where}"
        )
    if replay["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"crash replay disagrees ({replay['max_abs_diff_rel']:.2e} rel) {where}"
        )
    # the speed gate needs a cold arm expensive enough that fixed overheads
    # cannot dominate the ratio
    if (
        result["cold_s"] >= MIN_GATED_COLD_S
        and result["warm_speedup"] < SPEEDUP_GATE
    ):
        failures.append(
            f"warm restart speedup {result['warm_speedup']:.2f}x is below the "
            f"{SPEEDUP_GATE:.0f}x gate {where}"
        )
    return failures


def test_bench_durable():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
