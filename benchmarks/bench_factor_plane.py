"""Shared-memory factor plane and tiled out-of-core direct engine.

For each backend (eigenfunction / finite-difference) and backplane (grounded /
floating) this benchmark times full dense extraction through a
``ParallelExtractor`` whose workers **attach** to the parent's factor via the
shared-memory factor plane (``share_factors=True``) against one whose workers
each **rebuild** their own factor, and — for the eigenfunction backend — runs
the same extraction with ``max_direct_panels`` capped below the contact-panel
count so the dispatch policy must route through the **tiled** out-of-core
Cholesky engine.  It emits a machine-readable ``BENCH_factor_plane.json``
(results dir + repo root); every record carries the host's CPU count and the
process-wide factor-cache counters.

Hard gates (every scale, including the CI smoke run):

* shared-plane parallel extraction matches serial to 1e-10 with identical
  attributed solve counts;
* on the shared plane every worker attaches and **zero** workers refactor
  (``n_factor_attaches == n_workers``, ``n_factor_rebuilds == 0``), while the
  rebuild configuration must show zero attaches;
* the tiled path is actually chosen above the capped ``max_direct_panels``
  and extracts an identical ``G`` (1e-10).

Run directly (``REPRO_BENCH_NSIDE=8 REPRO_BENCH_WORKERS=2`` for a CI smoke
run)::

    PYTHONPATH=src python benchmarks/bench_factor_plane.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    bench_workers,
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
)

ensure_repro_importable()

from repro.experiments import run_factor_plane_experiment

#: agreement bound: neither the plane nor the tiled engine may change G
AGREEMENT_RTOL = 1e-10


def run(sizes: list[int]) -> list[dict]:
    workers = tuple(bench_workers(default=(2,)))
    results: list[dict] = []
    for s in sizes:
        results.extend(
            run_factor_plane_experiment(
                n_side=s,
                workers=workers,
                repeats=3 if s <= 16 else 2,
            )
        )
    payload = {
        "benchmark": "factor_plane",
        "description": "shared-memory factor plane (worker attach vs per-worker "
        "refactor) and tiled out-of-core direct engine vs the "
        "in-core direct path; eigenfunction and finite-difference "
        "backends, grounded and floating backplanes",
        "workers": list(workers),
        "cpu_count": int(os.cpu_count() or 1),
        "results": results,
    }
    lines = [
        "Shared-memory factor plane + tiled out-of-core direct engine",
        f"{'n_side':>6s} {'backend':>7s} {'backplane':>9s} {'workers':>7s} "
        f"{'warm(att)':>9s} {'warm(reb)':>9s} {'attach':>6s} {'rebuild':>7s} "
        f"{'max rel diff':>13s}",
    ]
    for r in results:
        for p in r["parallel"]:
            shared, rebuild = p["shared"], p["rebuild"]
            lines.append(
                f"{r['n_side']:>6d} {r['backend']:>7s} {r['backplane']:>9s} "
                f"{p['workers']:>7d} {shared['warmup_s']:>8.3f}s "
                f"{rebuild['warmup_s']:>8.3f}s "
                f"{shared['merged_stats']['n_factor_attaches']:>6d} "
                f"{shared['merged_stats']['n_factor_rebuilds']:>7d} "
                f"{shared['max_abs_diff_rel']:>12.2e}"
            )
        tiled = r.get("tiled")
        if tiled:
            lines.append(
                f"{r['n_side']:>6d} {r['backend']:>7s} {r['backplane']:>9s} "
                f"  tiled ncp={tiled['n_contact_panels']} "
                f"cap={tiled['max_direct_panels']} path={tiled['path']} "
                f"(adaptive would pick {tiled['adaptive_path']}) "
                f"{tiled['tiled_s']:>.3f}s vs direct {tiled['direct_s']:>.3f}s "
                f"diff={tiled['max_abs_diff_rel']:.2e}"
            )
    emit_benchmark("BENCH_factor_plane", payload, "bench_factor_plane", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one (backend, backplane, size) record; returns failure messages."""
    failures = []
    where = (
        f"{result['backend']}/{result['backplane']} at n_side={result['n_side']}"
    )
    for p in result["parallel"]:
        for label in ("shared", "rebuild"):
            row = p[label]
            if row["max_abs_diff_rel"] > AGREEMENT_RTOL:
                failures.append(
                    f"{label} parallel extraction disagrees with serial "
                    f"({row['max_abs_diff_rel']:.2e} rel, {p['workers']} workers) {where}"
                )
            if row["parallel_solves"] != result["serial_solves"]:
                failures.append(
                    f"{label} attribution drift: {row['parallel_solves']} vs "
                    f"serial {result['serial_solves']} solves {where}"
                )
        shared = p["shared"]["merged_stats"]
        rebuild = p["rebuild"]["merged_stats"]
        if shared["n_factor_rebuilds"] != 0:
            failures.append(
                f"shared plane let {shared['n_factor_rebuilds']} worker(s) "
                f"refactor (must be 0) {where}"
            )
        if shared["n_factor_attaches"] != p["workers"]:
            failures.append(
                f"shared plane reports {shared['n_factor_attaches']} attaches, "
                f"expected one per worker ({p['workers']}) {where}"
            )
        if rebuild["n_factor_attaches"] != 0:
            failures.append(
                f"rebuild configuration unexpectedly attached "
                f"{rebuild['n_factor_attaches']} factor(s) {where}"
            )
        if rebuild["n_factor_rebuilds"] != p["workers"]:
            failures.append(
                f"rebuild configuration reports {rebuild['n_factor_rebuilds']} "
                f"refactorisations, expected one per worker ({p['workers']}) {where}"
            )
    tiled = result.get("tiled")
    if tiled is not None:
        if tiled["path"] != "tiled":
            failures.append(
                f"dispatch above max_direct_panels chose {tiled['path']!r}, "
                f"expected 'tiled' {where}"
            )
        if tiled["max_abs_diff_rel"] > AGREEMENT_RTOL:
            failures.append(
                f"tiled extraction disagrees with the in-core direct path "
                f"({tiled['max_abs_diff_rel']:.2e} rel) {where}"
            )
    return failures


def test_bench_factor_plane():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
