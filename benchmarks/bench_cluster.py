"""Leader/worker cluster: agreement, exactly-once attribution, failover.

Four arms per problem size, all driving the same workload — one job per
substrate fingerprint (four fingerprints: same grid, different fill
factors), each asking for the same column count:

* **single-host** — today's in-process
  :class:`~repro.service.Scheduler`; its blocks are the reference every
  cluster arm must reproduce to **1e-10**.
* **cluster-1** — a :class:`~repro.cluster.ClusterLeader` fronting one
  worker *process* (spawned via ``python -m repro.cluster worker``); the
  single-worker wall time is the throughput baseline.
* **cluster-2** — the same leader configuration fronting two worker
  processes.  Gates: agreement, exactly-once attribution (the workers'
  ``attributed_solves`` sum to exactly the distinct column count; their
  engine builds sum to exactly the fingerprint count — one factor build
  per substrate across the whole cluster), and on multi-CPU runners a
  **>= 1.5x** speedup over cluster-1.  On a single-CPU runner the
  speedup gate self-exempts (the two worker processes share one core, so
  the ratio measures contention, not scaling) and the committed reference
  artifact records the exemption — the PR-3/PR-5 pattern.
* **failover** — a worker is SIGKILLed while its pinned fingerprint still
  has unserved columns; the re-submitted group must re-route to the
  survivor and complete.  Gates: zero lost jobs, ``reroutes >= 1``, the
  victim lands in the dead set, and the survivor solves exactly the
  still-missing columns (columns the victim solved before dying are
  served from the leader's store, never re-solved).

Emits a machine-readable ``BENCH_cluster.json`` (results dir + repo
root).  Run directly (``REPRO_BENCH_NSIDE=8`` for the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    REPO_ROOT,
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
)

ensure_repro_importable()

from repro.cluster import ClusterLeader
from repro.geometry.layouts import regular_grid
from repro.service import JobRequest, Scheduler, ServiceClient
from repro.substrate.parallel import SolverSpec
from repro.substrate.profile import SubstrateProfile

AGREEMENT_RTOL = 1e-10
#: fill factors — four distinct substrates over one grid size
FILLS = (0.5, 0.45, 0.4, 0.35)
COLUMNS_PER_GROUP = 8
SPEEDUP_FLOOR = 1.5
WORKER_BOOT_TIMEOUT_S = 60.0
JOB_TIMEOUT_S = 600.0


# ------------------------------------------------------------------ plumbing
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_worker(leader_url: str, worker_id: str) -> tuple[subprocess.Popen, str]:
    """Start one worker host as a real OS process (the unit failover kills)."""
    port = _free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster",
            "worker",
            "--leader",
            leader_url,
            "--port",
            str(port),
            "--worker-id",
            worker_id,
            "--workers",
            "1",
            "--heartbeat",
            "0.5",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return proc, f"http://127.0.0.1:{port}"


def _await_live(leader: ClusterLeader, count: int) -> None:
    deadline = time.monotonic() + WORKER_BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        if len(leader.registry.live()) >= count:
            return
        time.sleep(0.05)
    raise RuntimeError(
        f"{count} workers did not register within {WORKER_BOOT_TIMEOUT_S:g}s"
    )


def _kill(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        proc.wait(timeout=30)


def _rel_diff(got: np.ndarray, reference: np.ndarray) -> float:
    scale = max(float(np.max(np.abs(reference))), 1e-300)
    return float(np.max(np.abs(got - reference))) / scale


# ------------------------------------------------------------------ workload
def _specs(n_side: int) -> list[SolverSpec]:
    profile = SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)
    return [
        SolverSpec.bem(
            regular_grid(n_side=n_side, size=128.0, fill=fill),
            profile,
            max_panels=256,
            rtol=1e-8,
        )
        for fill in FILLS
    ]


def _columns(spec: SolverSpec) -> tuple[int, ...]:
    n = spec.layout.n_contacts
    return tuple(range(0, n, max(1, n // COLUMNS_PER_GROUP)))[:COLUMNS_PER_GROUP]


def _run_single_host(specs: list[SolverSpec]) -> tuple[float, list[np.ndarray]]:
    with Scheduler(n_workers=1) as scheduler:
        start = time.perf_counter()

        def one(spec: SolverSpec) -> np.ndarray:
            job_id = scheduler.submit(JobRequest(spec, columns=_columns(spec)))
            return scheduler.result(job_id, wait_s=JOB_TIMEOUT_S).result

        with ThreadPoolExecutor(max_workers=len(specs)) as pool:
            blocks = list(pool.map(one, specs))
        wall = time.perf_counter() - start
    return wall, blocks


def _run_through_leader(
    leader: ClusterLeader, specs: list[SolverSpec]
) -> tuple[float, list[np.ndarray]]:
    start = time.perf_counter()

    def one(spec: SolverSpec) -> np.ndarray:
        with ServiceClient(leader.url, timeout_s=JOB_TIMEOUT_S) as client:
            return client.extract(
                JobRequest(spec, columns=_columns(spec)), timeout_s=JOB_TIMEOUT_S
            )

    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        blocks = list(pool.map(one, specs))
    return time.perf_counter() - start, blocks


def _run_cluster_arm(
    specs: list[SolverSpec], n_workers: int
) -> tuple[float, list[np.ndarray], list[dict]]:
    """One fresh leader + ``n_workers`` worker processes over the workload."""
    procs: list[subprocess.Popen] = []
    with ClusterLeader() as leader:
        try:
            urls = []
            for i in range(n_workers):
                proc, url = _spawn_worker(leader.url, f"bench-{n_workers}w-{i}")
                procs.append(proc)
                urls.append(url)
            _await_live(leader, n_workers)
            wall, blocks = _run_through_leader(leader, specs)
            worker_stats = []
            for url in urls:
                with ServiceClient(url, timeout_s=30.0) as client:
                    worker_stats.append(client.stats())
        finally:
            _kill(procs)
    return wall, blocks, worker_stats


def _run_failover_arm(
    specs: list[SolverSpec], references: list[np.ndarray]
) -> dict:
    """Kill the owner of a pinned fingerprint with columns still unserved."""
    spec = specs[0]
    columns = _columns(spec)
    first, rest = columns[:2], columns[2:]
    procs: list[subprocess.Popen] = []
    with ClusterLeader() as leader:
        try:
            victim_proc, _ = _spawn_worker(leader.url, "bench-victim")
            procs.append(victim_proc)
            _await_live(leader, 1)
            with ServiceClient(leader.url, timeout_s=JOB_TIMEOUT_S) as client:
                # pin the fingerprint on the victim (the only live host) and
                # let it solve a prefix — those columns enter the leader's
                # store and must never be re-solved after the failover
                block_first = client.extract(
                    JobRequest(spec, columns=first), timeout_s=JOB_TIMEOUT_S
                )
                survivor_proc, survivor_url = _spawn_worker(
                    leader.url, "bench-survivor"
                )
                procs.append(survivor_proc)
                _await_live(leader, 2)
                # host death with the pin's group still owing `rest`
                victim_proc.kill()
                victim_proc.wait(timeout=30)
                block_rest = client.extract(
                    JobRequest(spec, columns=rest), timeout_s=JOB_TIMEOUT_S
                )
                stats = client.stats()
            with ServiceClient(survivor_url, timeout_s=30.0) as client:
                survivor_attributed = int(client.stats()["attributed_solves"])
        finally:
            _kill(procs)
    reference = references[0]
    got = np.concatenate([block_first, block_rest], axis=1)
    want = reference[:, : len(columns)]
    return {
        "rerouted_columns": len(rest),
        "survivor_attributed": survivor_attributed,
        "reroutes": int(stats["cluster"]["router"]["reroutes"]),
        "dead": sorted(stats["cluster"]["registry"]["dead"]),
        "max_abs_diff_rel": _rel_diff(got, want),
        "lost_jobs": 0,  # both extracts above returned, or we raised
    }


# ----------------------------------------------------------------------- run
def run_cluster_experiment(n_side: int) -> dict:
    specs = _specs(n_side)
    columns_total = sum(len(_columns(spec)) for spec in specs)

    single_wall, references = _run_single_host(specs)
    wall_1w, blocks_1w, _ = _run_cluster_arm(specs, n_workers=1)
    wall_2w, blocks_2w, stats_2w = _run_cluster_arm(specs, n_workers=2)
    failover = _run_failover_arm(specs, references)

    attributed_total = sum(int(s["attributed_solves"]) for s in stats_2w)
    engines_built_total = sum(int(s["engines"]["built"]) for s in stats_2w)
    cpu_count = os.cpu_count() or 1
    return {
        "n_side": n_side,
        "n_contacts": specs[0].layout.n_contacts,
        "n_fingerprints": len(specs),
        "columns_total": columns_total,
        "cpu_count": cpu_count,
        "single_host_wall_s": single_wall,
        "cluster1_wall_s": wall_1w,
        "cluster2_wall_s": wall_2w,
        "speedup_2v1": wall_1w / wall_2w,
        # two workers on one core measure contention, not scaling — the
        # speedup gate is only armed on multi-CPU runners (PR-3/PR-5 idiom)
        "speedup_gate_active": cpu_count >= 2,
        "cluster1_max_abs_diff_rel": max(
            _rel_diff(got, ref) for got, ref in zip(blocks_1w, references)
        ),
        "cluster2_max_abs_diff_rel": max(
            _rel_diff(got, ref) for got, ref in zip(blocks_2w, references)
        ),
        "attributed_total": attributed_total,
        "engines_built_total": engines_built_total,
        "worker_split": [int(s["attributed_solves"]) for s in stats_2w],
        "failover": failover,
    }


def run(sizes: list[int]) -> list[dict]:
    results = [run_cluster_experiment(n_side) for n_side in sizes]
    payload = {"benchmark": "cluster", "results": results}
    lines = [
        "Leader/worker cluster: agreement, attribution, failover",
        f"{'n_side':>6s} {'cols':>5s} {'1 host':>8s} {'1 wrk':>8s} {'2 wrk':>8s} "
        f"{'speedup':>7s} {'gate':>5s} {'split':>7s} {'reroute':>7s} "
        f"{'max rel diff':>13s}",
    ]
    for r in results:
        split = "/".join(str(s) for s in r["worker_split"])
        diff = max(
            r["cluster1_max_abs_diff_rel"],
            r["cluster2_max_abs_diff_rel"],
            r["failover"]["max_abs_diff_rel"],
        )
        lines.append(
            f"{r['n_side']:>6d} {r['columns_total']:>5d} "
            f"{r['single_host_wall_s']:>7.3f}s {r['cluster1_wall_s']:>7.3f}s "
            f"{r['cluster2_wall_s']:>7.3f}s {r['speedup_2v1']:>6.2f}x "
            f"{('on' if r['speedup_gate_active'] else 'off'):>5s} "
            f"{split:>7s} {r['failover']['reroutes']:>7d} {diff:>12.2e}"
        )
    emit_benchmark("BENCH_cluster", payload, "bench_cluster", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one size's record; returns failure messages."""
    failures = []
    where = f"at n_side={result['n_side']}"
    for arm in ("cluster1", "cluster2"):
        if result[f"{arm}_max_abs_diff_rel"] > AGREEMENT_RTOL:
            failures.append(
                f"{arm} blocks disagree with the single-host reference "
                f"({result[f'{arm}_max_abs_diff_rel']:.2e} rel) {where}"
            )
    if result["attributed_total"] != result["columns_total"]:
        failures.append(
            f"attribution is not exactly-once: {result['attributed_total']} "
            f"solves across workers for {result['columns_total']} distinct "
            f"columns {where}"
        )
    if result["engines_built_total"] != result["n_fingerprints"]:
        failures.append(
            f"{result['engines_built_total']} factor builds across the "
            f"cluster for {result['n_fingerprints']} fingerprints (want "
            f"exactly one per fingerprint) {where}"
        )
    failover = result["failover"]
    if failover["lost_jobs"] != 0:
        failures.append(f"failover lost {failover['lost_jobs']} jobs {where}")
    if failover["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"post-failover blocks disagree with the reference "
            f"({failover['max_abs_diff_rel']:.2e} rel) {where}"
        )
    if failover["reroutes"] < 1:
        failures.append(f"worker death did not re-route its pins {where}")
    if failover["dead"] != ["bench-victim"]:
        failures.append(
            f"dead set {failover['dead']} after killing bench-victim {where}"
        )
    if failover["survivor_attributed"] != failover["rerouted_columns"]:
        failures.append(
            f"survivor solved {failover['survivor_attributed']} columns for "
            f"{failover['rerouted_columns']} re-routed ones — columns the "
            f"victim already solved must come from the store {where}"
        )
    if (
        result["speedup_gate_active"]
        and result["speedup_2v1"] < SPEEDUP_FLOOR
    ):
        failures.append(
            f"two workers are {result['speedup_2v1']:.2f}x one worker "
            f"(floor {SPEEDUP_FLOOR}x on a {result['cpu_count']}-CPU runner) "
            f"{where}"
        )
    return failures


def test_bench_cluster():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
