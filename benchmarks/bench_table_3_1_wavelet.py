"""Table 3.1 — sparsity and accuracy of the wavelet sparsification.

Paper (examples 1a / 1b / 2 / 3): unthresholded sparsity ~2.5-3.5 with max
relative error 0.2% (regular and irregular same-size layouts) but 47% for the
alternating-size layout; after ~6x thresholding the fraction of entries off by
more than 10% is 0.1% / 5.2% / 1.1% / 80%.  The benchmark regenerates all four
rows; the qualitative shape (example 3 much worse than 1a/2) must hold.
"""

import pytest

from repro.experiments import paper_examples, run_wavelet_experiment

from common import bench_n_side, format_report_row, write_result


@pytest.mark.benchmark(group="table-3.1")
def test_table_3_1_wavelet_sparsification(benchmark):
    examples = paper_examples(n_side=bench_n_side())
    # keep the FD-solved variant at a resolution that runs in reasonable time
    examples["1b"].fd_resolution = (32, 32)
    examples["1b"].fd_planes_per_layer = (2, 5, 2)

    def run_all():
        return {name: run_wavelet_experiment(cfg) for name, cfg in examples.items()}

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    lines = ["Table 3.1 — wavelet sparsification (unthresholded Gws / thresholded Gwt)"]
    for name, res in results.items():
        lines.append(format_report_row(f"example {name} (Gws)", res.unthresholded))
        lines.append(format_report_row(f"example {name} (Gwt)", res.thresholded))
    write_result("table_3_1_wavelet", lines)

    # shape: the alternating-size example (3) is much less accurate than the
    # same-size examples (1a, 2), both before and after thresholding
    assert (
        results["3"].unthresholded.max_relative_error
        > 5 * results["1a"].unthresholded.max_relative_error
    )
    assert (
        results["3"].thresholded.fraction_above_10pct
        > results["1a"].thresholded.fraction_above_10pct
    )
