"""Async front door: NDJSON streaming latency and HTTP micro-batching.

Two arms against one :class:`~repro.service.aserver.AsyncExtractionServer`
over a shared substrate:

* **streaming** — concurrent ``/v1/stream`` clients each ask for an
  overlapping column set; per stream we time the first ``columns`` event
  against the job's ``done`` event.  The whole point of the streaming wire
  is that columns land **as the coalesced group's solve finishes**, before
  job completion — the gate pins that ordering for every stream and
  records the lead time.
* **micro-batching** — concurrent ``/v1/pairs`` queries over the same
  fingerprint; the HTTP layer holds them for a short window and collapses
  them into fewer scheduler submits.  The gate pins
  ``microbatch_submits < microbatch_queries`` via the service counters.

Everything crosses the wire as the declarative ``/v1`` JSON schema — the
gate also pins ``legacy_pickle_submits == 0`` (zero pickle on the wire).

Agreement gates: streamed blocks and micro-batched pair values must match
the service's own plain ``/v1/jobs`` submit-and-wait path to **1e-10**
(the front-door invariant — neither streaming nor batching may change the
answer the service gives).  An isolated single-process extraction is also
recorded and gated at 2x the solver's ``rtol`` — the service's warm
parallel engine and a cold local solver are distinct iterative solves, so
they agree to solver tolerance, not bit-exactly (that engine-level
agreement story lives in ``bench_service``).  Emits a machine-readable
``BENCH_frontdoor.json`` (results dir + repo root).

Run directly (``REPRO_BENCH_NSIDE=8`` for a CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_frontdoor.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from concurrent.futures import ThreadPoolExecutor

import numpy as np

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
)

ensure_repro_importable()

from repro.geometry.layouts import regular_grid
from repro.service import AsyncExtractionServer, JobRequest, ServiceClient
from repro.substrate.extraction import extract_columns
from repro.substrate.parallel import SolverSpec
from repro.substrate.profile import SubstrateProfile

#: solver tolerance of the benchmark substrate
SOLVER_RTOL = 1e-8
#: wire-fidelity bound: streaming/batching may never change the service's answer
AGREEMENT_RTOL = 1e-10
#: bound against an isolated single-process solve (two independent iterative
#: solves of the same system agree to solver tolerance, not bit-exactly)
ISOLATED_RTOL = 2 * SOLVER_RTOL
#: concurrent streaming clients
N_STREAMS = 4
#: columns per streaming client
COLUMNS_PER_STREAM = 4
#: concurrent /v1/pairs clients (each a 2-pair query, same fingerprint)
N_PAIR_CLIENTS = 8
#: window the micro-batcher holds pair queries (generous: CI boxes are slow)
PAIR_WINDOW_S = 0.25


def _stream_one(url: str, request: JobRequest) -> dict:
    """Consume one stream; returns timings, event order and column blocks."""
    start = time.perf_counter()
    first_columns_s = None
    done_s = None
    kinds: list[str] = []
    blocks: dict[int, np.ndarray] = {}
    with ServiceClient(url, timeout_s=600.0) as client:
        for event in client.stream(request, timeout_s=600.0):
            kinds.append(event["event"])
            if event["event"] == "columns":
                if first_columns_s is None:
                    first_columns_s = time.perf_counter() - start
                for j, column in zip(event["columns"], event["block"].T):
                    blocks[j] = column
            elif event["event"] == "done":
                done_s = time.perf_counter() - start
    return {
        "kinds": kinds,
        "first_columns_s": first_columns_s,
        "done_s": done_s,
        "blocks": blocks,
    }


def run_frontdoor_experiment(n_side: int, seed: int = 0) -> dict:
    layout = regular_grid(n_side=n_side, size=128.0, fill=0.5)
    profile = SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)
    n = layout.n_contacts
    spec = SolverSpec.bem(layout, profile, max_panels=256, rtol=1e-8)

    # overlapping column sets drawn from one half of the contacts, so the
    # scheduler's cross-stream coalescing has real work to share
    rng = np.random.default_rng(seed)
    pool = np.sort(rng.choice(n, size=max(COLUMNS_PER_STREAM, n // 2), replace=False))
    stream_columns = [
        tuple(
            int(c)
            for c in np.sort(rng.choice(pool, size=COLUMNS_PER_STREAM, replace=False))
        )
        for _ in range(N_STREAMS)
    ]
    union = sorted({c for cols in stream_columns for c in cols})
    union_index = {c: k for k, c in enumerate(union)}

    # isolated single-process solve (solver-tolerance cross-check)
    isolated = extract_columns(spec.build(), np.asarray(union, dtype=int))
    scale = float(np.abs(isolated).max())

    pair_queries = [
        [(int(rng.integers(n)), int(rng.choice(union))) for _ in range(2)]
        for _ in range(N_PAIR_CLIENTS)
    ]

    with AsyncExtractionServer(
        coalesce_window_s=0.05,
        pair_window_s=PAIR_WINDOW_S,
        pair_max_batch=N_PAIR_CLIENTS,
    ) as server:
        # --- streaming arm --------------------------------------------------
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_STREAMS) as executor:
            streams = list(
                executor.map(
                    lambda cols: _stream_one(server.url, JobRequest(spec, columns=cols)),
                    stream_columns,
                )
            )
        stream_wall_s = time.perf_counter() - start

        # the service's own plain job path over the same union: the
        # wire-fidelity reference (served from the result store, so this is
        # exactly what a non-streaming /v1 client receives)
        with ServiceClient(server.url, timeout_s=600.0) as client:
            reference = client.extract(
                JobRequest(spec, columns=tuple(union)), timeout_s=600.0
            )

        stream_diff = 0.0
        leads = []
        ordered = True
        for cols, stream in zip(stream_columns, streams):
            kinds = stream["kinds"]
            has_columns = "columns" in kinds and "done" in kinds
            ordered = ordered and has_columns and (
                kinds.index("columns") < kinds.index("done")
            )
            if stream["first_columns_s"] is not None and stream["done_s"] is not None:
                leads.append(stream["done_s"] - stream["first_columns_s"])
            for j in cols:
                got = stream["blocks"].get(j)
                if got is None:
                    ordered = False
                    continue
                diff = np.abs(got - reference[:, union_index[j]]).max() / scale
                stream_diff = max(stream_diff, float(diff))
        isolated_diff = float(np.abs(reference - isolated).max() / scale)

        # --- micro-batching arm --------------------------------------------
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_PAIR_CLIENTS) as executor:

            def one_query(pairs):
                with ServiceClient(server.url, timeout_s=600.0) as client:
                    return client.pairs(spec, pairs, timeout_s=600.0)

            pair_values = list(executor.map(one_query, pair_queries))
        pairs_wall_s = time.perf_counter() - start

        pair_diff = 0.0
        for pairs, values in zip(pair_queries, pair_values):
            for (i, j), value in zip(pairs, values):
                diff = abs(value - reference[i, union_index[j]]) / scale
                pair_diff = max(pair_diff, float(diff))

        frontdoor = ServiceClient(server.url).stats()["frontdoor"]

    return {
        "n_side": int(n_side),
        "n_contacts": int(n),
        "n_streams": N_STREAMS,
        "columns_per_stream": COLUMNS_PER_STREAM,
        "union_columns": len(union),
        "cpu_count": int(os.cpu_count() or 1),
        "stream_wall_s": float(stream_wall_s),
        "first_column_before_done": bool(ordered),
        "first_column_lead_s": [float(lead) for lead in leads],
        "median_first_column_lead_s": float(np.median(leads)) if leads else None,
        "stream_max_abs_diff_rel": float(stream_diff),
        "isolated_max_abs_diff_rel": isolated_diff,
        "n_pair_clients": N_PAIR_CLIENTS,
        "pairs_wall_s": float(pairs_wall_s),
        "pairs_max_abs_diff_rel": float(pair_diff),
        "frontdoor": frontdoor,
    }


def run(sizes: list[int]) -> list[dict]:
    results = [run_frontdoor_experiment(n_side=s) for s in sizes]
    payload = {
        "benchmark": "frontdoor",
        "description": "asyncio /v1 front door: NDJSON streaming (columns "
        f"pushed before job completion, {N_STREAMS} concurrent clients) and "
        f"HTTP micro-batching of {N_PAIR_CLIENTS} concurrent pair queries "
        "over one fingerprint; pickle-free schema wire throughout",
        "results": results,
    }
    lines = [
        "Async front door: streaming + HTTP micro-batching",
        f"{'n_side':>6s} {'streams':>7s} {'union':>5s} {'stream':>8s} "
        f"{'lead':>7s} {'queries':>7s} {'submits':>7s} {'pairs':>8s} "
        f"{'max rel diff':>13s}",
    ]
    for r in results:
        lead = r["median_first_column_lead_s"]
        lines.append(
            f"{r['n_side']:>6d} {r['n_streams']:>7d} {r['union_columns']:>5d} "
            f"{r['stream_wall_s']:>7.3f}s "
            f"{(f'{lead:.3f}s' if lead is not None else 'n/a'):>7s} "
            f"{r['frontdoor']['microbatch_queries']:>7d} "
            f"{r['frontdoor']['microbatch_submits']:>7d} "
            f"{r['pairs_wall_s']:>7.3f}s "
            f"{max(r['stream_max_abs_diff_rel'], r['pairs_max_abs_diff_rel']):>12.2e}"
        )
    emit_benchmark("BENCH_frontdoor", payload, "bench_frontdoor", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one size's record; returns failure messages."""
    failures = []
    where = f"at n_side={result['n_side']}"
    frontdoor = result["frontdoor"]
    if not result["first_column_before_done"]:
        failures.append(
            f"a stream did not deliver its first columns before job "
            f"completion {where}"
        )
    if result["stream_max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"streamed columns disagree with the plain /v1 job path "
            f"({result['stream_max_abs_diff_rel']:.2e} rel) {where}"
        )
    if result["pairs_max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"micro-batched pair values disagree with the plain /v1 job path "
            f"({result['pairs_max_abs_diff_rel']:.2e} rel) {where}"
        )
    if result["isolated_max_abs_diff_rel"] > ISOLATED_RTOL:
        failures.append(
            f"service results drift beyond solver tolerance from an "
            f"isolated single-process solve "
            f"({result['isolated_max_abs_diff_rel']:.2e} rel) {where}"
        )
    if frontdoor["streams_opened"] != result["n_streams"]:
        failures.append(
            f"{frontdoor['streams_opened']} streams opened for "
            f"{result['n_streams']} clients {where}"
        )
    if frontdoor["microbatch_queries"] != result["n_pair_clients"]:
        failures.append(
            f"{frontdoor['microbatch_queries']} micro-batch queries counted "
            f"for {result['n_pair_clients']} clients {where}"
        )
    if not 1 <= frontdoor["microbatch_submits"] < frontdoor["microbatch_queries"]:
        failures.append(
            f"micro-batching did not coalesce: {frontdoor['microbatch_queries']} "
            f"queries became {frontdoor['microbatch_submits']} submits {where}"
        )
    if frontdoor["legacy_pickle_submits"] != 0:
        failures.append(f"pickle crossed the wire {where}")
    return failures


def test_bench_frontdoor():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
