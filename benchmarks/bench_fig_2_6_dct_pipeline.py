"""Figure 2-6 — the DCT current-to-potential apply pipeline.

Times a single operator application for the FFT-based path and the cached
cosine-matrix path, and checks they agree.  (The figure itself is a schematic;
the quantity of interest is that the eigendecomposition apply is cheap, which
underpins Table 2.2.)
"""

import numpy as np
import pytest

from repro.geometry import PanelGrid, regular_grid
from repro.substrate import SubstrateProfile
from repro.substrate.bem import SurfaceOperator

from common import write_result


@pytest.mark.benchmark(group="fig-2.6")
@pytest.mark.parametrize("panels", [64, 128])
def test_fig_2_6_operator_apply(benchmark, panels):
    layout = regular_grid(n_side=16, size=128.0, fill=0.5)
    profile = SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)
    grid = PanelGrid(layout, panels, panels)
    op_fft = SurfaceOperator(grid, profile, use_fft=True)
    op_mat = SurfaceOperator(grid, profile, use_fft=False)
    rng = np.random.default_rng(0)
    q = rng.standard_normal((panels, panels))

    assert np.allclose(op_fft.apply_grid(q), op_mat.apply_grid(q), rtol=1e-9, atol=1e-12)
    result = benchmark(op_fft.apply_grid, q)
    write_result(
        f"fig_2_6_dct_pipeline_{panels}",
        [f"Figure 2-6 pipeline: one {panels}x{panels} panel operator apply",
         "FFT path and cosine-matrix path agree to 1e-9 relative."],
    )
    assert result.shape == (panels, panels)
