"""Chaos suite: the extraction service under deterministically injected faults.

The service's fault-tolerance claims (supervised worker pools, scheduler
retry with backoff, priority-aware load shedding) are only trustworthy if
the failures they guard against can be produced on demand.  This benchmark
drives :func:`repro.experiments.run_faults_experiment`: one overlapping
multi-client workload runs fault-free (the accuracy and attribution
reference), then again under three :mod:`repro.faults` plans — a pool
worker killed mid-``solve_many``, a transient engine-build failure, and a
saturated bounded queue behind the real HTTP server (plus a dropped
dispatch cycle).  It emits a machine-readable ``BENCH_faults.json``
(results dir + repo root).

Hard gates (every scale, including the CI smoke run):

* **worker kill** — the injected kill actually fired, the supervised
  extractor rebuilt the pool (>= 1 ``pool_rebuilds``), zero jobs were lost,
  and results agree with the fault-free run to 1e-10;
* **factor retry** — the transient build failure is absorbed by the retry
  policy within ``max_attempts`` and at least one retry was recorded;
* **attribution invariance** — every arm charges exactly one black-box
  solve per distinct union column: recovery, retries and store re-checks
  must never double-count (nor skip) an attributed solve;
* **overload** — exactly the two lowest-priority queued jobs are shed, the
  over-limit submission is refused with HTTP 429 (+ Retry-After), both
  high-priority jobs and every surviving job complete at 1e-10, and an
  injected dropped dispatch cycle leaves the queue intact.

Run directly (``REPRO_BENCH_NSIDE=8`` for a CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_faults.py

or through pytest like the other benchmarks.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# usable both as a pytest module (benchmarks/conftest.py handles common) and
# as a standalone script for the CI smoke run
sys.path.insert(0, str(Path(__file__).parent))

from common import (
    default_sizes,
    emit_benchmark,
    ensure_repro_importable,
    gate_main,
)

ensure_repro_importable()

from repro.experiments import run_faults_experiment

#: agreement bound: fault recovery may never change the answer
AGREEMENT_RTOL = 1e-10
#: clients in the concurrent workload (every arm)
N_CLIENTS = 4
#: scheduler retry budget for the transient-failure arm
MAX_ATTEMPTS = 3


def run(sizes: list[int]) -> list[dict]:
    results = [
        run_faults_experiment(n_side=s, n_clients=N_CLIENTS, max_attempts=MAX_ATTEMPTS)
        for s in sizes
    ]
    payload = {
        "benchmark": "faults",
        "description": "extraction service under injected faults "
        f"({N_CLIENTS} concurrent clients on a shared substrate): worker "
        "kill + supervised pool rebuild, transient engine-build failure + "
        "retry/backoff, bounded-queue load shedding with HTTP 429, dropped "
        "dispatch cycle",
        "n_clients": N_CLIENTS,
        "max_attempts": MAX_ATTEMPTS,
        "cpu_count": int(os.cpu_count() or 1),
        "results": results,
    }
    lines = [
        "Fault-tolerant extraction service: chaos suite",
        f"{'n_side':>6s} {'union':>5s} {'arm':>12s} {'status':>26s} "
        f"{'solves':>6s} {'max rel diff':>13s}",
    ]
    for r in results:
        for arm in ("baseline", "worker_kill", "factor_retry"):
            a = r[arm]
            lines.append(
                f"{r['n_side']:>6d} {r['union_columns']:>5d} {arm:>12s} "
                f"{','.join(a['status']):>26s} {a['attributed_solves']:>6d} "
                f"{a.get('max_abs_diff_rel', 0.0):>12.2e}"
            )
        kill, retry, over = r["worker_kill"], r["factor_retry"], r["overload"]
        lines.append(
            f"{r['n_side']:>6d}    kill: {kill['pool_rebuilds']} rebuild / "
            f"{kill['degraded_solves']} degraded | retry: {retry['retries']} "
            f"retried, attempts={max(retry['attempts'])} | overload: "
            f"{over['shed']} shed + {over['submits_rejected']} rejected "
            f"(429={over['rejected_over_http']}), diff={over['max_abs_diff_rel']:.2e}"
        )
    emit_benchmark("BENCH_faults", payload, "bench_faults", lines)
    return results


def check(result: dict) -> list[str]:
    """Gate one size's record; returns failure messages."""
    failures = []
    where = f"at n_side={result['n_side']}"
    union = result["union_columns"]
    baseline = result["baseline"]
    if any(status != "done" for status in baseline["status"]):
        failures.append(f"baseline jobs ended {baseline['status']} {where}")

    # every arm's attribution is exact: one solve per distinct union column,
    # no matter what was killed, retried or re-read from the store
    for arm in ("baseline", "worker_kill", "factor_retry"):
        solves = result[arm]["attributed_solves"]
        if solves != union:
            failures.append(
                f"{arm} attributed {solves} solves for a {union}-column "
                f"union {where}"
            )

    kill = result["worker_kill"]
    if not kill["fault_fired"]:
        failures.append(f"worker-kill fault never fired {where}")
    if any(status != "done" for status in kill["status"]):
        failures.append(f"worker-kill arm lost jobs: {kill['status']} {where}")
    if kill["pool_rebuilds"] < 1:
        failures.append(
            f"worker kill recovered without a pool rebuild "
            f"(pool_rebuilds={kill['pool_rebuilds']}) {where}"
        )
    if kill["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"worker-kill results disagree ({kill['max_abs_diff_rel']:.2e} rel) "
            f"{where}"
        )

    retry = result["factor_retry"]
    if any(status != "done" for status in retry["status"]):
        failures.append(f"factor-retry arm lost jobs: {retry['status']} {where}")
    if retry["retries"] < 1:
        failures.append(
            f"transient factor failure was never retried "
            f"(retries={retry['retries']}) {where}"
        )
    if max(retry["attempts"]) > result["max_attempts"]:
        failures.append(
            f"factor-retry arm took {max(retry['attempts'])} attempts "
            f"(budget {result['max_attempts']}) {where}"
        )
    if retry["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"factor-retry results disagree ({retry['max_abs_diff_rel']:.2e} rel) "
            f"{where}"
        )

    over = result["overload"]
    # exactly the two lowest-priority jobs are displaced — the youngest two
    # of the priority-0 queue — and both high-priority jobs complete
    if over["low_status"] != ["done", "done", "shed", "shed"]:
        failures.append(
            f"overload shed the wrong jobs: low={over['low_status']} {where}"
        )
    if any(status != "done" for status in over["high_status"]):
        failures.append(
            f"high-priority jobs did not complete: {over['high_status']} {where}"
        )
    if over["shed"] != 2 or over["submits_rejected"] != 1:
        failures.append(
            f"overload counters off (shed={over['shed']}, "
            f"rejected={over['submits_rejected']}; expected 2/1) {where}"
        )
    if not over["rejected_over_http"]:
        failures.append(f"over-limit submission was not refused with 429 {where}")
    if over["served_during_drop"] != 0 or over["queue_depth_after_drop"] == 0:
        failures.append(
            f"dropped dispatch cycle did not leave the queue intact "
            f"(served={over['served_during_drop']}, "
            f"depth={over['queue_depth_after_drop']}) {where}"
        )
    if over["max_abs_diff_rel"] > AGREEMENT_RTOL:
        failures.append(
            f"overload survivors disagree ({over['max_abs_diff_rel']:.2e} rel) "
            f"{where}"
        )
    return failures


def test_bench_faults():
    for result in run(default_sizes()):
        failures = check(result)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    gate_main(run(default_sizes()), check)
