"""Table 4.3 — the low-rank method on larger examples.

Paper (example 4: 4096-contact alternating grid; example 5: 10240 mixed-size
contacts): sparsity 10-21 unthresholded and 62-129 thresholded, 1.7-3.2% of
entries off by more than 10%, and solve-reduction factors of 8.7-18.  Accuracy
is measured on a 10% column sample of the exact G.

This benchmark runs scaled versions of the two layouts (set
``REPRO_BENCH_NSIDE=32`` for a 4096-contact example 4) with the real
eigenfunction black box, so it also exercises the paper's headline claim that
the representation is extracted with many fewer solves than contacts.
"""

import pytest

from repro.experiments import chapter4_examples, run_lowrank_experiment

from common import bench_n_side, format_report_row, write_result


@pytest.mark.benchmark(group="table-4.3")
def test_table_4_3_large_examples(benchmark):
    configs = chapter4_examples(n_side=bench_n_side())

    def run_all():
        out = {}
        for name in ("ch4-4", "ch4-5"):
            out[name] = run_lowrank_experiment(
                configs[name], max_dense=1200, sample_columns=96
            )
        return out

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    lines = ["Table 4.3 — low-rank method on larger examples"]
    for name, res in results.items():
        lines.append(format_report_row(f"{name} (Gw)", res.unthresholded))
        lines.append(format_report_row(f"{name} (Gwt)", res.thresholded))
    write_result("table_4_3_large", lines)

    for res in results.values():
        # headline shape: real solve reduction and modest error growth
        assert res.unthresholded.solve_reduction_factor > 1.0
        assert res.thresholded.sparsity_factor > res.unthresholded.sparsity_factor
        assert res.thresholded.fraction_above_10pct < 0.25
