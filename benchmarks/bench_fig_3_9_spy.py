"""Figures 3-9 / 3-10 — sparsity structure of Gws and thresholded Gwt (Example 2).

The paper shows MATLAB spy plots with a strong multilevel "ray" structure and
reports nnz = 415073 before and 69865 after thresholding for its ~1150-contact
example.  The benchmark reports the nonzero counts and pattern statistics for
the irregular-layout example and renders coarse text spy plots.
"""

import pytest

from repro.analysis.spy import spy_statistics, spy_text
from repro.core import WaveletSparsifier
from repro.experiments import paper_examples
from repro.substrate import CountingSolver, DenseMatrixSolver, extract_dense

from common import bench_n_side, write_result


@pytest.mark.benchmark(group="fig-3.9")
def test_fig_3_9_spy_structure(benchmark):
    config = paper_examples(n_side=bench_n_side())["2"]
    layout = config.build_layout()
    hierarchy = config.build_hierarchy(layout)
    solver = config.build_solver(layout)
    g = extract_dense(solver, symmetrize=True)

    def extract():
        sparsifier = WaveletSparsifier(hierarchy, order=2)
        rep = sparsifier.extract(CountingSolver(DenseMatrixSolver(g, layout)))
        rep_t = rep.threshold_to_sparsity(rep.sparsity_factor() * 6)
        return rep, rep_t

    rep, rep_t = benchmark.pedantic(extract, iterations=1, rounds=1)

    stats = spy_statistics(rep.gw)
    stats_t = spy_statistics(rep_t.gw)
    lines = [
        "Figures 3-9 / 3-10 — wavelet Gws / Gwt sparsity structure (Example 2)",
        f"Gws: nnz={int(stats['nnz'])}  sparsity={stats['sparsity_factor']:.1f}x  "
        f"near-diagonal fraction={stats['fraction_near_diagonal']:.2f}",
        f"Gwt: nnz={int(stats_t['nnz'])}  sparsity={stats_t['sparsity_factor']:.1f}x  "
        f"near-diagonal fraction={stats_t['fraction_near_diagonal']:.2f}",
        "", "Gws pattern:", spy_text(rep.gw, width=48),
        "", "Gwt pattern:", spy_text(rep_t.gw, width=48),
    ]
    write_result("fig_3_9_spy", lines)

    assert stats_t["nnz"] < stats["nnz"]
