"""Table 4.1 — low-rank versus wavelet sparsification without thresholding.

Paper (regular / alternating-size / mixed-shape examples): the low-rank method
achieves sparsity 3.5-4.1 with max relative error 5-12%, while the wavelet
method achieves sparsity 2.3-2.5 with error 0.2% on the regular grid but 31-47%
on the size-varying layouts.  The benchmark regenerates all three example rows
for both methods; the qualitative shape (low-rank robust to size variation,
wavelet not) must hold.
"""

import pytest

from repro.experiments import chapter4_examples, run_method_comparison

from common import bench_n_side, format_report_row, write_result

EXAMPLES = ("ch4-1", "ch4-2", "ch4-3")


@pytest.mark.benchmark(group="table-4.1")
def test_table_4_1_lowrank_vs_wavelet(benchmark):
    configs = chapter4_examples(n_side=bench_n_side())

    def run_all():
        return {name: run_method_comparison(configs[name]) for name in EXAMPLES}

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    lines = ["Table 4.1 — sparsity/accuracy without thresholding (low-rank vs wavelet)"]
    for name in EXAMPLES:
        for method in ("lowrank", "wavelet"):
            lines.append(
                format_report_row(f"example {name} {method}", results[name][method].unthresholded)
            )
    write_result("table_4_1_lowrank_vs_wavelet", lines)

    # shape assertions from the paper:
    # (1) on the size-varying examples the low-rank method is far more accurate
    for name in ("ch4-2", "ch4-3"):
        lr = results[name]["lowrank"].unthresholded
        wv = results[name]["wavelet"].unthresholded
        assert lr.max_relative_error < wv.max_relative_error
    # (2) the low-rank representation is at least as sparse as the wavelet one
    for name in EXAMPLES:
        assert (
            results[name]["lowrank"].unthresholded.sparsity_factor
            >= 0.9 * results[name]["wavelet"].unthresholded.sparsity_factor
        )
