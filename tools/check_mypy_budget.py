"""Non-blocking mypy ratchet over the typed frontier (``src/repro/service``).

CI runs this in the lint job with ``continue-on-error``: the step turning
red is a signal, never a merge gate.  The budget is a ratchet — when the
real error count drops, lower ``DEFAULT_BUDGET`` to pin the progress; new
code pushing the count *up* past the budget makes the step fail visibly.

Runs anywhere: when mypy is not installed (the runtime image bakes in only
the scientific stack) the check skips with a clear message and exit 0, so
``python tools/check_mypy_budget.py`` is always safe to call locally.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

#: ceiling on ``mypy --config-file mypy.ini`` errors; only ever lower it
DEFAULT_BUDGET = 60

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_BUDGET,
        help=f"maximum tolerated error count (default {DEFAULT_BUDGET})",
    )
    args = parser.parse_args(argv)

    try:
        import mypy  # noqa: F401
    except ImportError:
        print(
            "check_mypy_budget: mypy is not installed here; skipping "
            "(the CI lint job installs the pinned toolchain from "
            "requirements-dev.txt)"
        )
        return 0

    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(REPO_ROOT / "mypy.ini")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    output = proc.stdout + proc.stderr
    print(output, end="")
    errors = sum(1 for line in output.splitlines() if ": error:" in line)
    if errors > args.budget:
        print(
            f"check_mypy_budget: {errors} error(s) exceed the budget of "
            f"{args.budget} — fix the new ones (or, for a deliberate "
            f"frontier expansion, raise DEFAULT_BUDGET with justification)"
        )
        return 1
    print(f"check_mypy_budget: {errors} error(s) within the budget of {args.budget}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
