"""Repository maintenance tooling (static analysis, CI helpers).

Nothing in this package is imported by the library under ``src/`` — these
are developer/CI tools only, kept dependency-free (stdlib) so the lint job
can run them without installing the scientific stack.
"""
