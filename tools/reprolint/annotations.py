"""Parsing of ``# reprolint:`` source annotations.

Annotations are ordinary comments, extracted with :mod:`tokenize` (so a
``# reprolint:`` inside a string literal is never misread).  A comment
that shares its line with code applies to that line; a comment-only line
applies to the next line that contains code — which is how multi-line
statements and long creation calls are annotated without blowing the line
length:

    # reprolint: owned-by(ParallelExtractor)
    self._pool = ProcessPoolExecutor(
        max_workers=...,
    )

Grammar (directives ``;``-separated within one comment)::

    guarded-by(<lock_attr>)
    holds(<lock_attr>[, <lock_attr>...])
    owned-by(<owner>)
    disable=<RULE>[,<RULE>...] [-- <reason>]

Unparseable directive text is recorded in :attr:`Annotations.malformed`
and surfaced as RL101 by the engine — a typo'd annotation silently doing
nothing is exactly the failure mode this suite exists to prevent.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .rules import is_rule

__all__ = ["Directives", "Annotations", "parse_annotations"]

_MARKER_RE = re.compile(r"#\s*reprolint:\s*(?P<body>.*)$")
_GUARDED_RE = re.compile(r"^guarded-by\(\s*([A-Za-z_]\w*)\s*\)$")
_HOLDS_RE = re.compile(r"^holds\(\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*\)$")
_OWNED_RE = re.compile(r"^owned-by\(\s*([^()]+?)\s*\)$")
_DISABLE_RE = re.compile(
    r"^disable=\s*(?P<rules>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass
class Directives:
    """Every directive that applies to one code line."""

    line: int
    guarded_by: str | None = None
    holds: tuple[str, ...] = ()
    owned_by: str | None = None
    #: rule id -> reason string ("" when the reason is missing)
    disables: dict[str, str] = field(default_factory=dict)
    #: directive kinds a checker acknowledged (unconsumed ones are RL101)
    consumed: set[str] = field(default_factory=set)

    def merge(self, other: "Directives") -> None:
        if other.guarded_by is not None:
            self.guarded_by = other.guarded_by
        if other.holds:
            self.holds = tuple(dict.fromkeys(self.holds + other.holds))
        if other.owned_by is not None:
            self.owned_by = other.owned_by
        self.disables.update(other.disables)


@dataclass
class Annotations:
    """All annotations of one file, keyed by the code line they apply to."""

    by_line: dict[int, Directives] = field(default_factory=dict)
    #: (line, message) pairs for directive text that failed to parse
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def get(self, *linenos: int | None) -> Directives | None:
        """The directives of the first annotated line among ``linenos``."""
        for lineno in linenos:
            if lineno is not None and lineno in self.by_line:
                return self.by_line[lineno]
        return None

    def consume(self, directives: Directives | None, kind: str) -> None:
        if directives is not None:
            directives.consumed.add(kind)


def _parse_body(body: str, lineno: int, out: Directives, ann: Annotations) -> None:
    for raw in body.split(";"):
        part = raw.strip()
        if not part:
            continue
        if (m := _GUARDED_RE.match(part)) is not None:
            out.guarded_by = m.group(1)
        elif (m := _HOLDS_RE.match(part)) is not None:
            out.holds = out.holds + tuple(
                name.strip() for name in m.group(1).split(",")
            )
        elif (m := _OWNED_RE.match(part)) is not None:
            out.owned_by = m.group(1)
        elif (m := _DISABLE_RE.match(part)) is not None:
            reason = (m.group("reason") or "").strip()
            for rule_id in (r.strip() for r in m.group("rules").split(",")):
                if not is_rule(rule_id):
                    ann.malformed.append(
                        (lineno, f"disable names unknown rule {rule_id!r}")
                    )
                    continue
                out.disables[rule_id] = reason
        else:
            ann.malformed.append(
                (lineno, f"unparseable reprolint directive {part!r}")
            )


def parse_annotations(source: str) -> Annotations:
    """Extract every ``# reprolint:`` directive of ``source``.

    Tokenization errors (the file will fail ``ast.parse`` too) yield an
    empty annotation set — the engine reports the parse failure itself.
    """
    ann = Annotations()
    comments: list[tuple[int, str, bool]] = []  # (line, text, standalone)
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return ann
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            standalone = tok.line.lstrip().startswith("#")
            comments.append((tok.start[0], tok.string, standalone))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            for line in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(line)

    max_code_line = max(code_lines, default=0)
    for comment_line, text, standalone in comments:
        match = _MARKER_RE.search(text)
        if match is None:
            continue
        target = comment_line
        if standalone:
            target = next(
                (
                    line
                    for line in range(comment_line + 1, max_code_line + 1)
                    if line in code_lines
                ),
                comment_line,
            )
        directives = Directives(line=target)
        _parse_body(match.group("body"), comment_line, directives, ann)
        existing = ann.by_line.get(target)
        if existing is not None:
            existing.merge(directives)
        else:
            ann.by_line[target] = directives
    return ann
