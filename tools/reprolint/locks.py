"""RL100 — guarded-by lock discipline.

Per class: collect the attributes declared ``guarded-by(<lock>)`` on their
``self.<attr> = ...`` assignments, then verify every other ``self.<attr>``
access in that class's methods happens while the declared lock is held —
lexically inside ``with self.<lock>:`` or in a method annotated
``holds(<lock>)``.  ``__init__`` / ``__post_init__`` are exempt: until the
constructor returns, no concurrent observer can hold a reference.

Nested functions and lambdas are analysed with an *empty* held-lock set —
they may execute later, on another thread, long after the enclosing
``with`` block exited.  Comprehensions, by contrast, run inline at the
point of the expression, so they inherit the current held set.
"""

from __future__ import annotations

import ast

from .annotations import Annotations
from .diagnostics import Diagnostic

__all__ = ["check_locks"]

_EXEMPT_METHODS = frozenset({"__init__", "__post_init__"})


def _self_attr_targets(node: ast.stmt) -> list[str]:
    """Attribute names of every ``self.<attr>`` target of an assignment."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    else:
        return []
    names = []
    for target in targets:
        for sub in ast.walk(target):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                names.append(sub.attr)
    return names


def _collect_guarded(
    cls: ast.ClassDef, ann: Annotations, path: str, diags: list[Diagnostic]
) -> dict[str, str]:
    """``{attr: lock}`` declared by guarded-by annotations inside ``cls``."""
    guarded: dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        directives = ann.get(node.lineno, getattr(node, "end_lineno", None))
        if directives is None or directives.guarded_by is None:
            continue
        attrs = _self_attr_targets(node)
        if not attrs:
            ann.consume(directives, "guarded-by")
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RL101",
                    "guarded-by must annotate a self.<attr> assignment",
                )
            )
            continue
        ann.consume(directives, "guarded-by")
        for attr in attrs:
            guarded[attr] = directives.guarded_by
    return guarded


class _MethodVisitor:
    """Walks one method body tracking the lexically held lock set."""

    def __init__(
        self,
        path: str,
        guarded: dict[str, str],
        lock_names: frozenset[str],
        diags: list[Diagnostic],
    ) -> None:
        self.path = path
        self.guarded = guarded
        self.lock_names = lock_names
        self.diags = diags

    def _with_locks(self, node: ast.With | ast.AsyncWith) -> set[str]:
        acquired = set()
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.lock_names
            ):
                acquired.add(expr.attr)
        return acquired

    def walk(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.walk(item.context_expr, held)
                if item.optional_vars is not None:
                    self.walk(item.optional_vars, held)
            inner = held | self._with_locks(node)
            for stmt in node.body:
                self.walk(stmt, frozenset(inner))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # defaults/decorators evaluate now, the body runs later (possibly
            # on another thread, after the lock was dropped)
            for default in getattr(node.args, "defaults", []):
                self.walk(default, held)
            for default in getattr(node.args, "kw_defaults", []):
                if default is not None:
                    self.walk(default, held)
            for decorator in getattr(node, "decorator_list", []):
                self.walk(decorator, held)
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self.walk(stmt, frozenset())
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guarded
        ):
            lock = self.guarded[node.attr]
            if lock not in held:
                self.diags.append(
                    Diagnostic(
                        self.path,
                        node.lineno,
                        node.col_offset + 1,
                        "RL100",
                        f"attribute {node.attr!r} is guarded by self.{lock} "
                        f"but accessed without holding it",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self.walk(child, held)


def check_locks(
    tree: ast.Module, ann: Annotations, path: str
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        guarded = _collect_guarded(cls, ann, path, diags)
        if not guarded:
            continue
        lock_names = frozenset(guarded.values())
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            directives = ann.get(method.lineno)
            holds: tuple[str, ...] = ()
            if directives is not None and directives.holds:
                ann.consume(directives, "holds")
                holds = directives.holds
                for lock in holds:
                    if lock not in lock_names:
                        diags.append(
                            Diagnostic(
                                path,
                                method.lineno,
                                method.col_offset + 1,
                                "RL101",
                                f"holds({lock}) names a lock no guarded "
                                f"attribute of {cls.name} uses",
                            )
                        )
            if method.name in _EXEMPT_METHODS:
                continue
            visitor = _MethodVisitor(path, guarded, lock_names, diags)
            for stmt in method.body:
                visitor.walk(stmt, frozenset(holds))
    return diags
