"""Lint driver: parse, run every rule family, apply suppressions.

Public entry points are :func:`lint_source` (one in-memory module, used by
the fixture tests) and :func:`lint_paths` (files and directory trees, used
by the CLI).  Suppression comments are applied here, after all checkers
ran: a ``# reprolint: disable=RULE -- reason`` on (or directly above) the
diagnosed line removes matching findings, but only when it carries a
reason — a bare ``disable`` is itself the RS400 finding and suppresses
nothing.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .annotations import Annotations, parse_annotations
from .diagnostics import Diagnostic
from .leaks import check_leaks
from .locks import check_locks
from .pickles import check_pickles

__all__ = ["lint_source", "lint_paths"]

#: rules that may never be suppressed (meta-rules about the lint inputs)
_UNSUPPRESSIBLE = frozenset({"RX000", "RS400"})

_SKIP_DIR_NAMES = frozenset({"__pycache__", ".git", ".ruff_cache"})


def _apply_suppressions(
    diags: list[Diagnostic], ann: Annotations, path: str
) -> list[Diagnostic]:
    kept: list[Diagnostic] = []
    for diag in diags:
        directives = ann.get(diag.line)
        if (
            diag.rule not in _UNSUPPRESSIBLE
            and directives is not None
            and diag.rule in directives.disables
            and directives.disables[diag.rule]
        ):
            continue
        kept.append(diag)
    # a reasonless disable is rejected whether or not anything matched it —
    # it documents nothing and would silently rot
    for directives in ann.by_line.values():
        for rule, reason in directives.disables.items():
            if not reason:
                kept.append(
                    Diagnostic(
                        path,
                        directives.line,
                        1,
                        "RS400",
                        f"disable={rule} carries no reason; write "
                        f"'disable={rule} -- <why this is safe>'",
                    )
                )
    return kept


def _annotation_findings(ann: Annotations, path: str) -> list[Diagnostic]:
    diags = [
        Diagnostic(path, line, 1, "RL101", message)
        for line, message in ann.malformed
    ]
    for directives in ann.by_line.values():
        for kind, present in (
            ("guarded-by", directives.guarded_by is not None),
            ("holds", bool(directives.holds)),
            ("owned-by", directives.owned_by is not None),
        ):
            if present and kind not in directives.consumed:
                diags.append(
                    Diagnostic(
                        path,
                        directives.line,
                        1,
                        "RL101",
                        f"{kind} annotation does not apply to this line "
                        f"(no checker consumed it)",
                    )
                )
    return diags


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source text; returns sorted diagnostics."""
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return [Diagnostic(path, line, 1, "RX000", f"parse failed: {exc}")]
    ann = parse_annotations(source)
    diags: list[Diagnostic] = []
    diags.extend(check_locks(tree, ann, path))
    diags.extend(check_leaks(tree, ann, path))
    diags.extend(check_pickles(tree, ann, path))
    diags.extend(_annotation_findings(ann, path))
    diags = _apply_suppressions(diags, ann, path)
    return sorted(set(diags), key=Diagnostic.sort_key)


def _iter_python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (_SKIP_DIR_NAMES & set(candidate.parts))
            )
        elif path.suffix == ".py":
            files.append(path)
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(paths: list[str | Path]) -> tuple[list[Diagnostic], int]:
    """Lint files/trees; returns ``(diagnostics, files_scanned)``."""
    diags: list[Diagnostic] = []
    files = _iter_python_files(paths)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            diags.append(
                Diagnostic(str(path), 1, 1, "RX000", f"unreadable: {exc}")
            )
            continue
        diags.extend(lint_source(source, path=str(path)))
    return sorted(diags, key=Diagnostic.sort_key), len(files)
