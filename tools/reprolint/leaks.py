"""RR200/RR201 — resource leak paths.

Tracks creations of the handle-bearing resources this codebase uses —
``SharedMemory``, ``np.memmap``, ``sqlite3.connect``,
``ProcessPoolExecutor``, ``tempfile`` scratch files, bare ``open`` — and
requires each one to be provably released:

* created as a ``with`` context expression, or
* released (``close``/``unlink``/``shutdown``/``terminate``, or
  ``os.close``/``os.unlink``/``os.remove`` on it) inside a ``finally`` or
  ``except`` block of the enclosing function, or
* returned to the caller (ownership escapes), or
* annotated ``# reprolint: owned-by(<owner>)`` — the claim that a named
  long-lived owner's teardown releases it.

A release that only exists on the straight-line path downgrades the
finding to RR201 (leak on the error path) instead of RR200.  Creations
assigned to ``self.<attr>`` always require the ``owned-by`` annotation:
the handle outlives the frame, so only the owner's lifecycle can be
audited.
"""

from __future__ import annotations

import ast

from .annotations import Annotations
from .diagnostics import Diagnostic

__all__ = ["check_leaks"]

#: creator call name -> (required qualifier names, or None for any/bare)
_CREATORS: dict[str, tuple[str, ...] | None] = {
    "SharedMemory": None,
    "memmap": ("np", "numpy"),
    "connect": ("sqlite3",),
    "ProcessPoolExecutor": None,
    "NamedTemporaryFile": None,
    "TemporaryFile": None,
    "mkstemp": None,
}

_RELEASE_METHODS = frozenset(
    {"close", "unlink", "shutdown", "terminate", "release"}
)
_RELEASE_FUNCTIONS = frozenset({"close", "unlink", "remove"})  # under os.*


def _creator_label(call: ast.Call) -> str | None:
    """The tracked creator this call invokes, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open"
        if func.id in _CREATORS and _CREATORS[func.id] is None:
            return func.id
        if func.id in ("memmap", "mkstemp"):
            return func.id
        return None
    if isinstance(func, ast.Attribute) and func.attr in _CREATORS:
        qualifiers = _CREATORS[func.attr]
        if qualifiers is None:
            return func.attr
        base = func.value
        if isinstance(base, ast.Name) and base.id in qualifiers:
            return func.attr
        return None
    if isinstance(func, ast.Attribute) and func.attr == "mkstemp":
        return "mkstemp"
    return None


def _build_parents(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_release_on(node: ast.AST, names: set[str]) -> bool:
    """True when ``node`` is a release call targeting one of ``names``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _RELEASE_METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id in names
    ):
        return True
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _RELEASE_FUNCTIONS
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
    ):
        return any(
            isinstance(arg, ast.Name) and arg.id in names for arg in node.args
        ) or any(
            isinstance(sub, ast.Name) and sub.id in names
            for arg in node.args
            for sub in ast.walk(arg)
        )
    return False


def _release_paths(scope: ast.AST, names: set[str]) -> tuple[bool, bool]:
    """``(released_on_error_path, released_anywhere)`` for ``names`` in scope."""
    on_error = False
    anywhere = False
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            for region in [node.finalbody] + [h.body for h in node.handlers]:
                for stmt in region:
                    for sub in ast.walk(stmt):
                        if _is_release_on(sub, names):
                            on_error = True
        if _is_release_on(node, names):
            anywhere = True
    return on_error, anywhere


def _escaping_names(expr: ast.AST) -> set[str]:
    """Names a returned/yielded expression hands out of the function.

    An attribute read (``shm.name``) copies a field, it does not transfer
    the handle — so attribute bases are not counted as escapes.
    """
    out: set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            return
        if isinstance(node, ast.Name):
            out.add(node.id)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(expr)
    return out


def _is_returned(scope: ast.AST, names: set[str]) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom))
            and node.value is not None
            and _escaping_names(node.value) & names
        ):
            return True
    return False


def _enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST], tree: ast.Module
) -> ast.AST:
    current = node
    while current in parents:
        current = parents[current]
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
    return tree


def _assignment_context(
    call: ast.Call, parents: dict[ast.AST, ast.AST]
) -> tuple[str, ast.AST | None, set[str]]:
    """Classify where the created handle goes.

    Returns ``(kind, stmt, names)`` with kind one of ``"with"`` (context
    manager), ``"return"`` (ownership escapes immediately), ``"names"``
    (bound to local names), ``"self"`` (stored on the instance) or
    ``"loose"`` (used as a bare expression / argument).
    """
    current: ast.AST = call
    while current in parents:
        parent = parents[current]
        if isinstance(parent, ast.withitem) and parent.context_expr is current:
            return "with", None, set()
        if isinstance(parent, ast.Return):
            return "return", parent, set()
        if isinstance(parent, (ast.Assign, ast.AnnAssign)) and (
            getattr(parent, "value", None) is current
        ):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            names: set[str] = set()
            stores_on_self = False
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
                    elif (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        stores_on_self = True
            if stores_on_self:
                return "self", parent, names
            if names:
                return "names", parent, names
            return "loose", parent, set()
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.stmt)):
            return "loose", parent, set()
        current = parent
    return "loose", None, set()


def check_leaks(
    tree: ast.Module, ann: Annotations, path: str
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    parents = _build_parents(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        label = _creator_label(node)
        if label is None:
            continue
        kind, stmt, names = _assignment_context(node, parents)
        if kind in ("with", "return"):
            continue
        stmt_lines = (
            node.lineno,
            getattr(stmt, "lineno", None),
            getattr(stmt, "end_lineno", None),
        )
        directives = ann.get(*stmt_lines)
        if directives is not None and directives.owned_by is not None:
            ann.consume(directives, "owned-by")
            continue
        if kind == "self":
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RR200",
                    f"{label} handle stored on self outlives this frame; "
                    f"declare its owner with '# reprolint: owned-by(...)'",
                )
            )
            continue
        if kind == "loose" or not names:
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RR200",
                    f"{label} handle is never bound for release: use a "
                    f"'with' block or annotate '# reprolint: owned-by(...)'",
                )
            )
            continue
        scope = _enclosing_function(node, parents, tree)
        if _is_returned(scope, names):
            continue
        on_error, anywhere = _release_paths(scope, names)
        if on_error:
            continue
        if anywhere:
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RR201",
                    f"{label} handle is released only on the happy path; "
                    f"move the release into a 'finally' block",
                )
            )
        else:
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RR200",
                    f"{label} handle has no release on any path: use "
                    f"'with', release it in 'finally', or annotate "
                    f"'# reprolint: owned-by(...)'",
                )
            )
    return diags
