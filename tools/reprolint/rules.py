"""The reprolint rule catalogue.

Every diagnostic the suite can emit is registered here with a one-line
title (shown next to each finding) and a long-form explanation (served by
``python -m tools.reprolint --explain RULE``).  Rule identifiers are
stable: suppression comments reference them, so renaming one is a breaking
change for every annotated source line.
"""

from __future__ import annotations

__all__ = ["RULES", "explain", "is_rule"]


RULES: dict[str, dict[str, str]] = {
    "RX000": {
        "title": "file could not be parsed",
        "explain": """\
The file failed to parse as Python, so none of the reprolint rules could
run over it.  Fix the syntax error first — an unparseable file is treated
as a hard finding (never silently skipped) because a lint pass that skips
broken files would report a clean run it never performed.

This rule cannot be suppressed.""",
    },
    "RL100": {
        "title": "guarded attribute accessed outside its lock",
        "explain": """\
An attribute declared lock-guarded was read or written on a path that does
not hold the declared lock.

Declare a guarded attribute by annotating its initialising assignment:

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # reprolint: guarded-by(_lock)

Every later ``self.hits`` access must then sit inside ``with self._lock:``
or inside a method annotated as entered with the lock already held:

    def _bump_locked(self):  # reprolint: holds(_lock)
        self.hits += 1

``__init__`` / ``__post_init__`` are exempt (no concurrent observer can
hold a reference yet).  Nested functions and lambdas are analysed with an
empty held-lock set: they may run later, on another thread, after the
enclosing ``with`` block exited.

The check is lexical, not an alias analysis: it sees ``with self.<lock>:``
blocks and ``holds(<lock>)`` annotations, nothing else.  For a genuinely
safe unlocked access (e.g. a single-threaded teardown path), suppress with
a reason:

    self.hits = 0  # reprolint: disable=RL100 -- teardown runs single-threaded""",
    },
    "RL101": {
        "title": "malformed or misplaced reprolint annotation",
        "explain": """\
A ``# reprolint:`` comment could not be parsed, names an unknown rule, or
annotates a line its directive cannot apply to — e.g. a ``guarded-by``
that is not attached to a ``self.<attr>`` assignment inside a class, or a
``holds(<lock>)`` naming a lock no guarded attribute of that class uses.

Annotation drift is itself a correctness bug: a typo'd ``guarded-by``
silently unprotects the attribute it meant to declare.  Fix the
annotation; this rule is how the suite keeps its own inputs honest.

Accepted directives (``;``-separated on one comment):

    # reprolint: guarded-by(_lock)
    # reprolint: holds(_lock)           (on or above a def line)
    # reprolint: owned-by(OwnerClass)   (on a resource-creation line)
    # reprolint: disable=RL100 -- why this is safe

A comment-only annotation line applies to the next code line below it.""",
    },
    "RR200": {
        "title": "resource may leak on some control-flow path",
        "explain": """\
A tracked resource — ``SharedMemory``, ``np.memmap``, ``sqlite3.connect``,
``ProcessPoolExecutor``, ``tempfile`` scratch, a bare ``open`` — is
created without a guarantee of release on every control-flow path.

Accepted shapes, in order of preference:

1. A ``with`` statement (the creation is a context-manager expression).
2. Release inside ``finally`` or an ``except`` handler of the enclosing
   function (``.close()`` / ``.unlink()`` / ``.shutdown()`` /
   ``.terminate()``, or ``os.close(fd)`` / ``os.unlink(path)``), so the
   error path cannot skip it.
3. The handle is returned — ownership escapes to the caller.
4. The lifetime genuinely transfers to a long-lived owner:

       self._conn = sqlite3.connect(path)  # reprolint: owned-by(Backend)

   ``owned-by`` is a claim that the named owner's ``close()`` releases the
   handle; the annotation is the audit trail for that claim.

A creation stored on ``self`` *requires* the ``owned-by`` annotation —
instance attributes outlive the creating frame, so the checker cannot see
their release.""",
    },
    "RR201": {
        "title": "resource released only on the happy path",
        "explain": """\
The resource *is* released — but only by straight-line code.  An exception
raised between the creation and the release (an allocation failure, a
``KeyboardInterrupt``, a failing intermediate call) skips the release and
leaks the handle:

    conn = sqlite3.connect(path)
    rows = conn.execute(query).fetchall()   # raises -> conn leaks
    conn.close()

Move the release into ``finally``:

    conn = sqlite3.connect(path)
    try:
        rows = conn.execute(query).fetchall()
    finally:
        conn.close()

or use a ``with`` statement / ``contextlib.closing`` when the object
supports it.""",
    },
    "RP300": {
        "title": "pickle deserialisation outside the trust boundary",
        "explain": """\
``pickle.loads`` / ``pickle.load`` executes arbitrary code from the bytes
it is given, so every call site is an implicit trust boundary.  This
repository confines deserialisation to an explicit allowlist:

* ``src/repro/service/persistence.py`` — journal replay of requests this
  same service serialised (the state dir is as trusted as the binary);
* ``src/repro/substrate/parallel.py`` — worker-spec shipping between a
  parent process and the worker pool it spawned;
* ``tests/``, ``benchmarks/``, ``examples/`` — developer-run code.

A new ``pickle.loads`` anywhere else is a finding.  Either move the
deserialisation behind one of the allowlisted modules, switch to a
declarative format (JSON + explicit construction), or — if the new module
genuinely is a trust boundary — extend the allowlist in
``tools/reprolint/pickles.py`` in the same change that documents why.""",
    },
    "RP301": {
        "title": "request handler unpickles without the legacy opt-in gate",
        "explain": """\
The deprecated ``/submit`` endpoint accepts pickled job requests over
HTTP, which is remote code execution for whoever can reach the socket.
The schema-first ``/v1`` wire needs no pickle at all, so the documented
containment is now twofold, and both layers live in one gate: every
handler path that reaches ``pickle.loads`` must first call
``_require_legacy_pickle_optin()``, which (a) answers 410 unless the
operator explicitly revived the legacy pickle endpoint at construction
(``allow_legacy_pickle`` / ``--allow-legacy-pickle``), and (b) even then
refuses non-loopback peers with a 403 unless the remote-pickle override
was also set.

This rule fires when a handler function in ``server.py`` or ``aserver.py``
calls ``pickle.loads`` without a lexically earlier
``_require_legacy_pickle_optin`` call in the same function — i.e. when
someone adds a new pickle-carrying endpoint and forgets the gate.  New
endpoints should speak the declarative wire schema instead
(``repro/service/wire.py``), which this rule never fires on.""",
    },
    "RS400": {
        "title": "suppression without a reason",
        "explain": """\
A ``# reprolint: disable=RULE`` comment must carry a reason string:

    value = risky()  # reprolint: disable=RR200 -- handle owned by pool teardown

A bare ``disable`` is rejected *and does not suppress* — an unexplained
suppression is indistinguishable from a stale one, and the reason text is
exactly the review artefact the suppression exists to create.

This rule cannot itself be suppressed.""",
    },
}


def is_rule(rule_id: str) -> bool:
    return rule_id in RULES


def explain(rule_id: str) -> str:
    """Long-form catalogue entry for one rule (the ``--explain`` body)."""
    entry = RULES[rule_id]
    header = f"{rule_id}: {entry['title']}"
    return f"{header}\n{'=' * len(header)}\n\n{entry['explain']}\n"
