"""CLI: ``python -m tools.reprolint [paths...] [--explain RULE] [--report F]``."""

from __future__ import annotations

import argparse
import sys

from .engine import lint_paths
from .rules import RULES, explain


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Concurrency- and resource-safety lint: guarded-by lock "
            "discipline, resource leak paths, pickle trust boundary."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print the catalogue entry for one rule id and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule id and exit"
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="also write the diagnostics (or a clean-run marker) to FILE",
    )
    args = parser.parse_args(argv)

    if args.explain:
        rule_id = args.explain.upper()
        if rule_id not in RULES:
            known = ", ".join(sorted(RULES))
            print(f"unknown rule {args.explain!r}; known rules: {known}")
            return 2
        print(explain(rule_id))
        return 0
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]['title']}")
        return 0
    if not args.paths:
        parser.error("no paths given (and neither --explain nor --list-rules)")

    diags, n_files = lint_paths(args.paths)
    lines = [diag.format() for diag in diags]
    summary = (
        f"reprolint: {len(diags)} finding(s) across {n_files} file(s)"
        if diags
        else f"reprolint: clean ({n_files} file(s) scanned)"
    )
    body = "\n".join([*lines, summary])
    print(body)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(body + "\n")
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
