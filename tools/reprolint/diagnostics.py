"""The diagnostic record every rule checker emits."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``path:line:col: RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)
