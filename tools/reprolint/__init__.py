"""reprolint — concurrency- and resource-safety static analysis.

A self-contained (stdlib-``ast``) lint suite enforcing the invariants the
extraction service's comments used to merely describe:

* **RL1xx lock discipline** — attributes annotated
  ``# reprolint: guarded-by(<lock>)`` may only be touched under
  ``with self.<lock>:`` or in a ``# reprolint: holds(<lock>)`` method;
* **RR2xx resource leak paths** — every ``SharedMemory`` / ``np.memmap`` /
  ``sqlite3.connect`` / ``ProcessPoolExecutor`` / scratch-file creation
  must reach a release on all control-flow paths (try/finally aware),
  with ``# reprolint: owned-by(...)`` for lifetime transfers;
* **RP3xx pickle trust boundary** — ``pickle.load(s)`` only in
  allowlisted modules, and in ``server.py`` handlers only behind the
  loopback guard.

Run it as ``python -m tools.reprolint src/ tests/ benchmarks/``; see
``--explain RULE`` for the catalogue and suppression syntax.
"""

from __future__ import annotations

from .diagnostics import Diagnostic
from .engine import lint_paths, lint_source
from .rules import RULES, explain

__all__ = ["Diagnostic", "lint_source", "lint_paths", "RULES", "explain"]
