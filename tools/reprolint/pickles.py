"""RP300/RP301 — pickle deserialisation trust boundary.

``pickle.loads``/``pickle.load`` executes arbitrary code from its input,
so call sites are confined to an explicit allowlist (journal replay in
``persistence.py``, worker-spec shipping in ``parallel.py``, developer-run
code under ``tests/``/``benchmarks/``/``examples/``).  The two HTTP front
ends (``server.py``, ``aserver.py``) are a special case: their request
handlers may unpickle, but only after the documented legacy opt-in gate
(``_require_legacy_pickle_optin``) ran earlier in the same handler
function — the gate that answers 410 unless the operator explicitly
revived the deprecated pickle endpoint, and 403 for non-loopback peers
even then.  The schema-first ``/v1`` wire (``wire.py``) needs no pickle
at all, which is why anything new should grow there instead.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from .annotations import Annotations
from .diagnostics import Diagnostic

__all__ = ["check_pickles", "ALLOWLIST", "GUARDED_FILES", "GUARD_NAMES"]

#: path suffixes (or leading directories) where pickle deserialisation is
#: an accepted, documented trust boundary
ALLOWLIST: tuple[str, ...] = (
    "repro/service/persistence.py",  # journal replay of self-written state
    "repro/substrate/parallel.py",  # worker specs within one process tree
)

#: directory prefixes treated as developer-run (never service-reachable)
DEV_DIRS: tuple[str, ...] = ("tests", "benchmarks", "examples")

#: files whose handlers may unpickle *behind the legacy opt-in gate*
GUARDED_FILES: tuple[str, ...] = (
    "repro/service/server.py",
    "repro/service/aserver.py",
)

#: a call to any of these names counts as the guard
GUARD_NAMES: frozenset[str] = frozenset({"_require_legacy_pickle_optin"})


def _classify_path(path: str) -> str:
    """``"allow"``, ``"guarded"`` or ``"deny"`` for one source path."""
    posix = PurePosixPath(path.replace("\\", "/"))
    text = str(posix)
    parts = posix.parts
    if any(part in DEV_DIRS for part in parts):
        return "allow"
    if any(text.endswith(suffix) for suffix in ALLOWLIST):
        return "allow"
    if any(text.endswith(suffix) for suffix in GUARDED_FILES):
        return "guarded"
    return "deny"


def _pickle_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``pickle``, directly imported load/loads names)."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "pickle":
                    modules.add(alias.asname or "pickle")
        elif isinstance(node, ast.ImportFrom) and node.module == "pickle":
            for alias in node.names:
                if alias.name in ("load", "loads"):
                    functions.add(alias.asname or alias.name)
    return modules, functions


def _is_pickle_load(
    call: ast.Call, modules: set[str], functions: set[str]
) -> bool:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("load", "loads")
        and isinstance(func.value, ast.Name)
        and func.value.id in modules
    ):
        return True
    return isinstance(func, ast.Name) and func.id in functions


def _guard_runs_before(
    scope: ast.AST | None, load_line: int
) -> bool:
    """True when a guard call appears in ``scope`` before ``load_line``."""
    if scope is None:
        return False
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and node.lineno < load_line
            and (
                (isinstance(node.func, ast.Name) and node.func.id in GUARD_NAMES)
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in GUARD_NAMES
                )
            )
        ):
            return True
    return False


def check_pickles(
    tree: ast.Module, ann: Annotations, path: str
) -> list[Diagnostic]:
    verdict = _classify_path(path)
    if verdict == "allow":
        return []
    modules, functions = _pickle_aliases(tree)
    if not modules and not functions:
        return []
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    diags: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not _is_pickle_load(node, modules, functions):
            continue
        if verdict == "guarded":
            scope: ast.AST | None = node
            while scope in parents:
                scope = parents[scope]
                if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
            else:
                scope = None
            if _guard_runs_before(scope, node.lineno):
                continue
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RP301",
                    "handler unpickles without calling "
                    "_require_legacy_pickle_optin() first",
                )
            )
        else:
            diags.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    "RP300",
                    "pickle deserialisation outside the allowlisted trust "
                    "boundary (see --explain RP300)",
                )
            )
    return diags
